package solve

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"mobisink/internal/core"
	"mobisink/internal/energy"
	"mobisink/internal/fault"
	"mobisink/internal/knapsack"
	"mobisink/internal/network"
	"mobisink/internal/online"
	"mobisink/internal/radio"
)

func paperInstance(tb testing.TB, n int, seed int64, speed, tau float64) *core.Instance {
	tb.Helper()
	d, err := network.Generate(network.PaperParams(n, seed))
	if err != nil {
		tb.Fatal(err)
	}
	h := energy.PaperSolar(energy.Sunny)
	rng := rand.New(rand.NewSource(seed))
	if err := d.AssignSteadyStateBudgets(h, 10000/speed, 0.2, rng); err != nil {
		tb.Fatal(err)
	}
	inst, err := core.BuildInstance(d, radio.Paper2013(), speed, tau)
	if err != nil {
		tb.Fatal(err)
	}
	return inst
}

func fixedPowerInstance(tb testing.TB, n int, seed int64, speed, tau float64) *core.Instance {
	tb.Helper()
	d, err := network.Generate(network.PaperParams(n, seed))
	if err != nil {
		tb.Fatal(err)
	}
	h := energy.PaperSolar(energy.Sunny)
	rng := rand.New(rand.NewSource(seed))
	if err := d.AssignSteadyStateBudgets(h, 10000/speed, 0.2, rng); err != nil {
		tb.Fatal(err)
	}
	model, err := radio.NewFixedPower(radio.Paper2013(), 0.3)
	if err != nil {
		tb.Fatal(err)
	}
	inst, err := core.BuildInstance(d, model, speed, tau)
	if err != nil {
		tb.Fatal(err)
	}
	return inst
}

func TestRegistryNames(t *testing.T) {
	want := []string{
		"Offline_Appro", "Offline_Greedy", "Offline_MaxMatch", "Offline_Sequential", "Offline_WaterFill",
		"Online_Appro", "Online_Appro_Warm", "Online_Greedy", "Online_MaxMatch", "Online_Sequential",
	}
	got := Names()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

func TestNewCaseInsensitive(t *testing.T) {
	for _, name := range []string{"Offline_Appro", "offline_appro", "OFFLINE_APPRO"} {
		s, err := New(name, Options{})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s.Name() != "Offline_Appro" {
			t.Fatalf("New(%q).Name() = %q, want canonical Offline_Appro", name, s.Name())
		}
	}
}

func TestNewUnknown(t *testing.T) {
	_, err := New("offline_magic", Options{})
	if err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
	if !strings.Contains(err.Error(), "offline_magic") {
		t.Fatalf("error %q does not name the unknown algorithm", err)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	Register("OFFLINE_APPRO", func(Options) Solver { return nil })
}

// TestAllSolversRun exercises every registered solver end to end on a
// small instance and validates the allocations.
func TestAllSolversRun(t *testing.T) {
	inst := fixedPowerInstance(t, 40, 3, 5, 1)
	for _, name := range Names() {
		s, err := New(name, Options{})
		if err != nil {
			t.Fatal(err)
		}
		alloc, err := s.Solve(context.Background(), inst)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := inst.Validate(alloc); err != nil {
			t.Fatalf("%s produced infeasible allocation: %v", name, err)
		}
		if alloc.Data <= 0 {
			t.Fatalf("%s collected no data", name)
		}
	}
}

// TestSolveCanceledUpfront: an already-canceled context fails every solver
// without producing an allocation.
func TestSolveCanceledUpfront(t *testing.T) {
	inst := fixedPowerInstance(t, 30, 4, 5, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range Names() {
		s, err := New(name, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Solve(ctx, inst); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: got %v, want context.Canceled", name, err)
		}
	}
}

// TestSolveCancelsMidSweep proves cancellation aborts real work: a knapsack
// oracle cancels the context on its first invocation, and the local-ratio
// sweep must stop before reaching the remaining bins.
func TestSolveCancelsMidSweep(t *testing.T) {
	inst := paperInstance(t, 60, 5, 5, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	calls := 0
	opts := Options{Core: core.Options{
		Knapsack: func(items []knapsack.Item, c float64) knapsack.Solution {
			calls++
			if calls == 1 {
				cancel()
			}
			return knapsack.FPTAS(0.1)(items, c)
		},
	}}
	s, err := New("Offline_Appro", opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(ctx, inst); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// The sweep has one knapsack call per sensor bin; cancellation after
	// the first call must prevent the vast majority of them.
	if calls > 2 {
		t.Fatalf("sweep ran %d knapsacks after cancellation", calls)
	}
}

// TestParallelMatchesSequential is the determinism guarantee of the
// window-component decomposition: with Parallel set, Offline_Appro must
// produce a byte-identical SlotOwner on seeded paper topologies.
func TestParallelMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		inst := paperInstance(t, 80, seed, 5, 1)
		seqS, err := New("Offline_Appro", Options{})
		if err != nil {
			t.Fatal(err)
		}
		parS, err := New("Offline_Appro", Options{Core: core.Options{Parallel: true, Workers: 4}})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := seqS.Solve(context.Background(), inst)
		if err != nil {
			t.Fatal(err)
		}
		par, err := parS.Solve(context.Background(), inst)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq.SlotOwner, par.SlotOwner) {
			t.Fatalf("seed %d: parallel SlotOwner differs from sequential", seed)
		}
		if seq.Data != par.Data {
			t.Fatalf("seed %d: parallel Data %v != sequential %v", seed, par.Data, seq.Data)
		}
	}
}

// fleetInstance builds a K-sink joint instance: the paper topology with
// the straight highway split into k contiguous sink segments.
func fleetInstance(tb testing.TB, n int, seed int64, k int, speed, tau float64) *core.Instance {
	tb.Helper()
	d, err := network.Generate(network.PaperParams(n, seed))
	if err != nil {
		tb.Fatal(err)
	}
	h := energy.PaperSolar(energy.Sunny)
	rng := rand.New(rand.NewSource(seed))
	if err := d.AssignSteadyStateBudgets(h, 10000/speed, 0.2, rng); err != nil {
		tb.Fatal(err)
	}
	if err := d.SplitSinks(k, nil); err != nil {
		tb.Fatal(err)
	}
	inst, err := core.BuildFleetInstance(d, radio.Paper2013(), speed, tau)
	if err != nil {
		tb.Fatal(err)
	}
	return inst
}

// TestSolversOnFleetInstance: the offline solvers accept fleet instances
// and produce feasible (conflict-free) allocations; the online protocol
// refuses them.
func TestSolversOnFleetInstance(t *testing.T) {
	inst := fleetInstance(t, 40, 3, 2, 5, 1)
	for _, name := range Names() {
		s, err := New(name, Options{})
		if err != nil {
			t.Fatal(err)
		}
		alloc, err := s.Solve(context.Background(), inst)
		if strings.HasPrefix(name, "Online_") {
			if err == nil {
				t.Fatalf("%s accepted a fleet instance", name)
			}
			continue
		}
		if name == "Offline_MaxMatch" {
			// The paper-rate model is not fixed-power; MaxMatch refuses.
			if err == nil {
				t.Fatalf("%s accepted a multi-power instance", name)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := inst.Validate(alloc); err != nil {
			t.Fatalf("%s produced infeasible fleet allocation: %v", name, err)
		}
		if alloc.Data <= 0 {
			t.Fatalf("%s collected no data", name)
		}
	}
}

func benchInstanceSolver(b *testing.B, name string, opts Options, build func(b *testing.B, n int) *core.Instance) {
	for _, n := range []int{50, 100, 200} {
		inst := build(b, n)
		s, err := New(name, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("N="+strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Solve(context.Background(), inst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchSolver(b *testing.B, name string, opts Options) {
	benchInstanceSolver(b, name, opts, func(b *testing.B, n int) *core.Instance {
		return paperInstance(b, n, 42, 5, 1)
	})
}

// benchFleetSolver benches a solver on K-sink joint instances; the K=
// path component becomes the K column of BENCH_solvers.json rows.
func benchFleetSolver(b *testing.B, name string, k int, opts Options) {
	b.Run("K="+strconv.Itoa(k), func(b *testing.B) {
		benchInstanceSolver(b, name, opts, func(b *testing.B, n int) *core.Instance {
			return fleetInstance(b, n, 42, k, 5, 1)
		})
	})
}

// BenchmarkSolvers drives `make bench`: each sub-benchmark is one
// (solver, network size) point of BENCH_solvers.json.
func BenchmarkSolvers(b *testing.B) {
	parallel := Options{Core: core.Options{Parallel: true}}
	// Every interval stalled: the degraded row isolates the fallback
	// scheduler plus the fault-path bookkeeping overhead.
	degraded := Options{Online: online.Options{Faults: &fault.Plan{StallProb: 1}}}
	b.Run("Offline_Appro", func(b *testing.B) { benchSolver(b, "Offline_Appro", Options{}) })
	b.Run("Offline_Appro_Parallel", func(b *testing.B) { benchSolver(b, "Offline_Appro", parallel) })
	b.Run("Offline_Appro_Fleet", func(b *testing.B) {
		benchFleetSolver(b, "Offline_Appro", 2, Options{})
		benchFleetSolver(b, "Offline_Appro", 4, Options{})
	})
	b.Run("Offline_Greedy", func(b *testing.B) { benchSolver(b, "Offline_Greedy", Options{}) })
	b.Run("Offline_Sequential", func(b *testing.B) { benchSolver(b, "Offline_Sequential", Options{}) })
	b.Run("Offline_WaterFill", func(b *testing.B) { benchSolver(b, "Offline_WaterFill", Options{}) })
	b.Run("Online_Appro", func(b *testing.B) { benchSolver(b, "Online_Appro", Options{}) })
	b.Run("Online_Appro_Warm", func(b *testing.B) { benchSolver(b, "Online_Appro_Warm", Options{}) })
	b.Run("Online_Appro_Degraded", func(b *testing.B) { benchSolver(b, "Online_Appro", degraded) })
}
