package solve

import (
	"fmt"
	"sort"
	"strings"

	"mobisink/internal/online"
)

// This file extends the registry to the per-interval layer: the online
// solvers above wrap a whole simulated tour, but a real sink server
// (internal/wire, cmd/sinkd) drives the interval loop itself and only
// needs the scheduler that allocates one interval's slots. NewScheduler
// resolves the same canonical names to that inner scheduler, so the wire
// transport and the in-process runner are guaranteed to dispatch to
// identical scheduling code.

// schedulerFactories maps lowercase canonical names to per-interval
// scheduler constructors. Keys mirror the Online_* solver registrations.
var schedulerFactories = map[string]func(Options) online.Scheduler{
	"online_appro":      func(o Options) online.Scheduler { return &online.Appro{Opts: o.Core} },
	"online_appro_warm": func(o Options) online.Scheduler { return &online.WarmAppro{Opts: o.Core} },
	"online_maxmatch":   func(o Options) online.Scheduler { return &online.MaxMatch{} },
	"online_greedy":     func(o Options) online.Scheduler { return &online.Greedy{} },
	"online_sequential": func(o Options) online.Scheduler { return &online.Sequential{Opts: o.Core} },
}

// NewScheduler builds the per-interval online scheduler behind the named
// algorithm. Lookup is case-insensitive and accepts both the canonical
// name ("Online_Appro") and the bare scheduler name ("Appro").
func NewScheduler(name string, opts Options) (online.Scheduler, error) {
	key := strings.ToLower(name)
	if !strings.HasPrefix(key, "online_") {
		key = "online_" + key
	}
	f, ok := schedulerFactories[key]
	if !ok {
		return nil, fmt.Errorf("solve: unknown online scheduler %q (have %s)",
			name, strings.Join(SchedulerNames(), ", "))
	}
	return f(opts), nil
}

// SchedulerNames returns the canonical names of the per-interval
// schedulers, sorted.
func SchedulerNames() []string {
	names := make([]string, 0, len(schedulerFactories))
	for k := range schedulerFactories {
		s, err := NewScheduler(k, Options{})
		if err != nil {
			continue
		}
		names = append(names, s.Name())
	}
	sort.Strings(names)
	return names
}
