package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointOps(t *testing.T) {
	p := Point{3, 4}
	q := Point{1, -2}
	if got := p.Add(q); got != (Point{4, 2}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 3*1+4*(-2) {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := p.Dist(Point{0, 0}); got != 5 {
		t.Errorf("Dist = %v", got)
	}
}

func TestNewLineRejectsDegenerate(t *testing.T) {
	if _, err := NewLine(Point{1, 1}, Point{1, 1}); err == nil {
		t.Fatal("expected error for coincident endpoints")
	}
	if _, err := NewLine(Point{0, 0}, Point{1, 0}); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestLineAt(t *testing.T) {
	l := HighwayLine(100)
	cases := []struct {
		s    float64
		want Point
	}{
		{0, Point{0, 0}},
		{50, Point{50, 0}},
		{100, Point{100, 0}},
		{-10, Point{0, 0}},   // clamped
		{150, Point{100, 0}}, // clamped
	}
	for _, c := range cases {
		if got := l.At(c.s); got.Dist(c.want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestLineCoverInterval(t *testing.T) {
	l := HighwayLine(1000)
	// Sensor 30 m off the path at x=500, range 50 → chord half-width 40.
	s0, s1, ok := l.CoverInterval(Point{500, 30}, 50)
	if !ok {
		t.Fatal("expected coverage")
	}
	if math.Abs(s0-460) > 1e-9 || math.Abs(s1-540) > 1e-9 {
		t.Errorf("interval = [%v, %v], want [460, 540]", s0, s1)
	}
	// Out of range.
	if _, _, ok := l.CoverInterval(Point{500, 60}, 50); ok {
		t.Error("expected no coverage for offset 60 > range 50")
	}
	// Sensor beyond the end of the segment but within range of endpoint.
	s0, s1, ok = l.CoverInterval(Point{1020, 0}, 50)
	if !ok {
		t.Fatal("expected endpoint coverage")
	}
	if s1 > 1000 || s0 > s1 {
		t.Errorf("clamped interval invalid: [%v, %v]", s0, s1)
	}
	// Sensor far beyond the end: no coverage.
	if _, _, ok := l.CoverInterval(Point{1100, 0}, 50); ok {
		t.Error("expected no coverage at 100 m past endpoint with range 50")
	}
}

// Property: every arc length inside the reported cover interval is actually
// within range (+tolerance), and points just outside are not (for intervals
// strictly inside the segment).
func TestLineCoverIntervalProperty(t *testing.T) {
	l := HighwayLine(10000)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		p := Point{rng.Float64() * 10000, (rng.Float64() - 0.5) * 400}
		r := 50 + rng.Float64()*150
		s0, s1, ok := l.CoverInterval(p, r)
		if !ok {
			if math.Abs(p.Y) <= r {
				// Only possible when the projection falls far outside.
				if p.X >= -r && p.X <= 10000+r {
					t.Fatalf("missed coverage for %v r=%v", p, r)
				}
			}
			continue
		}
		for _, s := range []float64{s0, (s0 + s1) / 2, s1} {
			if d := l.At(s).Dist(p); d > r+1e-6 {
				t.Fatalf("point at s=%v is at distance %v > r=%v (p=%v)", s, d, r, p)
			}
		}
		if s0 > 1 && s1 < 9999 && s1-s0 > 2 {
			if d := l.At(s0 - 1).Dist(p); d < r-1e-6 {
				t.Fatalf("interval start not tight: dist(s0-1)=%v < r=%v", d, r)
			}
		}
	}
}

func TestPolylineMatchesLine(t *testing.T) {
	// A polyline with collinear waypoints must behave like the line.
	pl, err := NewPolyline([]Point{{0, 0}, {300, 0}, {700, 0}, {1000, 0}})
	if err != nil {
		t.Fatal(err)
	}
	l := HighwayLine(1000)
	if pl.Length() != l.Length() {
		t.Fatalf("length mismatch: %v vs %v", pl.Length(), l.Length())
	}
	for s := 0.0; s <= 1000; s += 37.5 {
		if pl.At(s).Dist(l.At(s)) > 1e-9 {
			t.Errorf("At(%v): polyline %v vs line %v", s, pl.At(s), l.At(s))
		}
	}
	p := Point{500, 30}
	a0, a1, ok1 := pl.CoverInterval(p, 50)
	b0, b1, ok2 := l.CoverInterval(p, 50)
	if ok1 != ok2 || math.Abs(a0-b0) > 1e-6 || math.Abs(a1-b1) > 1e-6 {
		t.Errorf("cover mismatch: [%v %v %v] vs [%v %v %v]", a0, a1, ok1, b0, b1, ok2)
	}
}

func TestPolylineValidation(t *testing.T) {
	if _, err := NewPolyline([]Point{{0, 0}}); err == nil {
		t.Error("expected error for single waypoint")
	}
	if _, err := NewPolyline([]Point{{0, 0}, {0, 0}, {1, 1}}); err == nil {
		t.Error("expected error for duplicate consecutive waypoints")
	}
}

func TestPolylineCorner(t *testing.T) {
	pl, err := NewPolyline([]Point{{0, 0}, {100, 0}, {100, 100}})
	if err != nil {
		t.Fatal(err)
	}
	if got := pl.Length(); got != 200 {
		t.Fatalf("Length = %v, want 200", got)
	}
	if got := pl.At(150); got.Dist(Point{100, 50}) > 1e-9 {
		t.Errorf("At(150) = %v, want (100,50)", got)
	}
	// A point near the corner is covered on both segments; hull interval.
	s0, s1, ok := pl.CoverInterval(Point{100, 0}, 10)
	if !ok {
		t.Fatal("expected corner coverage")
	}
	if math.Abs(s0-90) > 1e-9 || math.Abs(s1-110) > 1e-9 {
		t.Errorf("corner interval = [%v, %v], want [90, 110]", s0, s1)
	}
}

func TestNewTrajectoryValidation(t *testing.T) {
	l := HighwayLine(1000)
	if _, err := NewTrajectory(nil, 5, 1); err == nil {
		t.Error("expected error for nil path")
	}
	if _, err := NewTrajectory(l, 0, 1); err == nil {
		t.Error("expected error for zero speed")
	}
	if _, err := NewTrajectory(l, 5, -1); err == nil {
		t.Error("expected error for negative slot length")
	}
}

func TestTrajectorySlotCount(t *testing.T) {
	l := HighwayLine(10000)
	cases := []struct {
		speed, tau float64
		want       int
	}{
		{5, 1, 2000},
		{10, 2, 500},
		{30, 4, 84}, // ceil(10000/120) = 84
		{5, 16, 125},
	}
	for _, c := range cases {
		tr, err := NewTrajectory(l, c.speed, c.tau)
		if err != nil {
			t.Fatal(err)
		}
		if tr.SlotCount != c.want {
			t.Errorf("T(speed=%v, tau=%v) = %d, want %d", c.speed, c.tau, tr.SlotCount, c.want)
		}
	}
}

func TestTrajectoryGamma(t *testing.T) {
	l := HighwayLine(10000)
	tr, _ := NewTrajectory(l, 5, 1)
	if got := tr.Gamma(200); got != 40 {
		t.Errorf("Gamma(200) = %d, want 40", got)
	}
	tr2, _ := NewTrajectory(l, 30, 4)
	if got := tr2.Gamma(200); got != 1 {
		t.Errorf("Gamma = %d, want 1 (floor 200/120)", got)
	}
	// Gamma never returns less than 1.
	tr3, _ := NewTrajectory(l, 100, 10)
	if got := tr3.Gamma(200); got != 1 {
		t.Errorf("Gamma = %d, want clamped 1", got)
	}
}

func TestSlotWindow(t *testing.T) {
	l := HighwayLine(10000)
	tr, _ := NewTrajectory(l, 5, 1) // 5 m per slot
	// Sensor on the path at x=1000, range 200 → cover [800,1200] → slots
	// with midpoints in range: slot j midpoint = 5j+2.5.
	j0, j1, ok := tr.SlotWindow(Point{1000, 0}, 200)
	if !ok {
		t.Fatal("expected window")
	}
	if tr.PosAtSlotMid(j0).Dist(Point{1000, 0}) > 200 || tr.PosAtSlotMid(j1).Dist(Point{1000, 0}) > 200 {
		t.Error("window endpoints out of range")
	}
	if j0 > 0 && tr.PosAtSlotMid(j0-1).Dist(Point{1000, 0}) <= 200-1e-9 {
		t.Error("window start not tight")
	}
	if j1 < tr.SlotCount-1 && tr.PosAtSlotMid(j1+1).Dist(Point{1000, 0}) <= 200-1e-9 {
		t.Error("window end not tight")
	}
	// Sensor too far off the path.
	if _, _, ok := tr.SlotWindow(Point{1000, 300}, 200); ok {
		t.Error("expected no window for 300 m offset")
	}
}

func TestSlotWindowProperty(t *testing.T) {
	l := HighwayLine(10000)
	tr, _ := NewTrajectory(l, 10, 2) // 20 m per slot
	f := func(xRaw, yRaw uint16) bool {
		p := Point{float64(xRaw % 10000), float64(yRaw%360) - 180}
		j0, j1, ok := tr.SlotWindow(p, 200)
		if !ok {
			return true
		}
		if j0 < 0 || j1 >= tr.SlotCount || j0 > j1 {
			return false
		}
		for j := j0; j <= j1; j++ {
			if tr.PosAtSlotMid(j).Dist(p) > 200+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTourDuration(t *testing.T) {
	tr, _ := NewTrajectory(HighwayLine(10000), 5, 1)
	if got := tr.TourDuration(); got != 2000 {
		t.Errorf("TourDuration = %v, want 2000", got)
	}
}

func TestSlotPositions(t *testing.T) {
	tr, _ := NewTrajectory(HighwayLine(100), 10, 1)
	if got := tr.SlotStart(3); got != 30 {
		t.Errorf("SlotStart(3) = %v", got)
	}
	if got := tr.SlotMid(3); got != 35 {
		t.Errorf("SlotMid(3) = %v", got)
	}
	if got := tr.PosAtSlotStart(3); got.Dist(Point{30, 0}) > 1e-9 {
		t.Errorf("PosAtSlotStart(3) = %v", got)
	}
	if got := tr.PosAtSlotMid(9); got.Dist(Point{95, 0}) > 1e-9 {
		t.Errorf("PosAtSlotMid(9) = %v", got)
	}
}

func TestNearest(t *testing.T) {
	l := HighwayLine(1000)
	s, d := Nearest(l, Point{300, 40})
	if math.Abs(s-300) > 1e-9 || math.Abs(d-40) > 1e-9 {
		t.Errorf("line nearest = (%v, %v)", s, d)
	}
	// Beyond the end: clamps to the endpoint.
	s, d = Nearest(l, Point{1100, 0})
	if s != 1000 || math.Abs(d-100) > 1e-9 {
		t.Errorf("clamped nearest = (%v, %v)", s, d)
	}
	pl, _ := NewPolyline([]Point{{0, 0}, {100, 0}, {100, 100}})
	s, d = Nearest(pl, Point{110, 50})
	if math.Abs(s-150) > 1e-9 || math.Abs(d-10) > 1e-9 {
		t.Errorf("polyline nearest = (%v, %v)", s, d)
	}
	// Sampling fallback must agree with the analytic answer.
	s2, d2 := nearestBySampling(pl, Point{110, 50})
	if math.Abs(s2-150) > 0.01 || math.Abs(d2-10) > 0.01 {
		t.Errorf("sampled nearest = (%v, %v)", s2, d2)
	}
}
