// Package geom provides the planar geometry substrate for the mobile-sink
// data-collection simulator: points and vectors, tour paths (straight lines
// and general polylines) parameterized by arc length, and the mapping from
// discrete time slots to sink positions.
//
// The paper assumes a straight-line pre-defined path and notes the extension
// to general paths is straightforward; Path is therefore an interface with a
// Line implementation (used by all experiments) and a Polyline implementation
// (used to validate the straight-line assumption is not load-bearing).
package geom

import (
	"errors"
	"fmt"
	"math"
)

// Point is a location in the plane, in meters.
type Point struct {
	X, Y float64
}

// Add returns p translated by the vector q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Path is a curve parameterized by arc length along which the mobile sink
// travels. Arc length 0 is the tour start.
type Path interface {
	// Length returns the total arc length of the path in meters.
	Length() float64
	// At returns the point at arc length s. s is clamped to [0, Length()].
	At(s float64) Point
	// CoverInterval returns the interval [s0, s1] of arc lengths at which
	// the path point is within distance r of p. ok is false when the path
	// never comes within r of p. The interval is a single contiguous range;
	// for paths that approach p several times it is the hull of all
	// in-range arc lengths (conservative, matching the paper's assumption
	// that A(v) is a set of consecutive slots).
	CoverInterval(p Point, r float64) (s0, s1 float64, ok bool)
}

// Line is a straight-line path from A to B, the configuration used in all of
// the paper's experiments (a highway segment).
type Line struct {
	A, B Point
}

// NewLine returns a straight-line path between two distinct points.
func NewLine(a, b Point) (*Line, error) {
	if a.Dist(b) == 0 {
		return nil, errors.New("geom: line endpoints coincide")
	}
	return &Line{A: a, B: b}, nil
}

// HighwayLine returns the canonical experiment path: a straight segment of
// the given length along the x-axis starting at the origin.
func HighwayLine(length float64) *Line {
	return &Line{A: Point{0, 0}, B: Point{length, 0}}
}

// Length implements Path.
func (l *Line) Length() float64 { return l.A.Dist(l.B) }

// At implements Path.
func (l *Line) At(s float64) Point {
	length := l.Length()
	s = clamp(s, 0, length)
	t := s / length
	return l.A.Add(l.B.Sub(l.A).Scale(t))
}

// CoverInterval implements Path. For a straight line the in-range arc lengths
// form exactly one interval, obtained by solving
// |A + t·(B−A) − p|² ≤ r² for t.
func (l *Line) CoverInterval(p Point, r float64) (float64, float64, bool) {
	d := l.B.Sub(l.A)
	length := l.Length()
	u := d.Scale(1 / length) // unit direction
	w := p.Sub(l.A)
	// Projection of p onto the line, and perpendicular offset.
	proj := w.Dot(u)
	perp2 := w.Dot(w) - proj*proj
	if perp2 < 0 {
		perp2 = 0 // numerical noise
	}
	if perp2 > r*r {
		return 0, 0, false
	}
	half := math.Sqrt(r*r - perp2)
	s0 := clamp(proj-half, 0, length)
	s1 := clamp(proj+half, 0, length)
	if s0 >= s1 {
		// The chord lies entirely before or after the segment; the path
		// is in range only if an endpoint is in range.
		if l.At(s0).Dist(p) <= r {
			return s0, s0, true
		}
		return 0, 0, false
	}
	return s0, s1, true
}

// Polyline is a piecewise-linear path through a sequence of waypoints.
type Polyline struct {
	pts  []Point
	cum  []float64 // cumulative arc length at each waypoint
	tot  float64
	segN int
}

// NewPolyline builds a polyline through the given waypoints. At least two
// waypoints are required and consecutive waypoints must be distinct.
func NewPolyline(pts []Point) (*Polyline, error) {
	if len(pts) < 2 {
		return nil, errors.New("geom: polyline needs at least two waypoints")
	}
	cum := make([]float64, len(pts))
	for i := 1; i < len(pts); i++ {
		d := pts[i].Dist(pts[i-1])
		if d == 0 {
			return nil, fmt.Errorf("geom: duplicate consecutive waypoint at index %d", i)
		}
		cum[i] = cum[i-1] + d
	}
	cp := make([]Point, len(pts))
	copy(cp, pts)
	return &Polyline{pts: cp, cum: cum, tot: cum[len(cum)-1], segN: len(pts) - 1}, nil
}

// Length implements Path.
func (pl *Polyline) Length() float64 { return pl.tot }

// At implements Path.
func (pl *Polyline) At(s float64) Point {
	s = clamp(s, 0, pl.tot)
	// Binary search for the segment containing s.
	lo, hi := 0, pl.segN-1
	for lo < hi {
		mid := (lo + hi) / 2
		if pl.cum[mid+1] < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	a, b := pl.pts[lo], pl.pts[lo+1]
	segLen := pl.cum[lo+1] - pl.cum[lo]
	t := (s - pl.cum[lo]) / segLen
	return a.Add(b.Sub(a).Scale(t))
}

// CoverInterval implements Path by sampling segment sub-intervals: each
// segment contributes its own analytic interval, and the union hull is
// returned.
func (pl *Polyline) CoverInterval(p Point, r float64) (float64, float64, bool) {
	found := false
	var s0, s1 float64
	for i := 0; i < pl.segN; i++ {
		seg := Line{A: pl.pts[i], B: pl.pts[i+1]}
		a, b, ok := seg.CoverInterval(p, r)
		if !ok {
			continue
		}
		a += pl.cum[i]
		b += pl.cum[i]
		if !found {
			s0, s1, found = a, b, true
		} else {
			s0 = math.Min(s0, a)
			s1 = math.Max(s1, b)
		}
	}
	return s0, s1, found
}

// Trajectory maps discrete time slots to sink positions for a sink moving
// along a path at constant speed.
type Trajectory struct {
	Path      Path
	Speed     float64 // r_s, meters/second
	SlotLen   float64 // τ, seconds
	SlotCount int     // T = ceil(L / (r_s·τ))
}

// NewTrajectory validates the kinematic parameters and derives the slot count
// T = ceil(L/(r_s·τ)) (paper §II.A).
func NewTrajectory(path Path, speed, slotLen float64) (*Trajectory, error) {
	switch {
	case path == nil:
		return nil, errors.New("geom: nil path")
	case speed <= 0:
		return nil, fmt.Errorf("geom: sink speed must be positive, got %v", speed)
	case slotLen <= 0:
		return nil, fmt.Errorf("geom: slot length must be positive, got %v", slotLen)
	}
	t := int(math.Ceil(path.Length() / (speed * slotLen)))
	if t < 1 {
		t = 1
	}
	return &Trajectory{Path: path, Speed: speed, SlotLen: slotLen, SlotCount: t}, nil
}

// Gamma returns Γ = ⌊R/(r_s·τ)⌋, the number of slots per online time interval
// for transmission range r (paper §V.A). Gamma is at least 1.
func (tr *Trajectory) Gamma(r float64) int {
	g := int(math.Floor(r / (tr.Speed * tr.SlotLen)))
	if g < 1 {
		g = 1
	}
	return g
}

// SlotStart returns the arc length of the sink at the beginning of slot j
// (0-based).
func (tr *Trajectory) SlotStart(j int) float64 {
	return float64(j) * tr.Speed * tr.SlotLen
}

// SlotMid returns the arc length of the sink at the middle of slot j
// (0-based). Slot midpoints are the default quantization for per-slot
// distances/rates.
func (tr *Trajectory) SlotMid(j int) float64 {
	return (float64(j) + 0.5) * tr.Speed * tr.SlotLen
}

// PosAtSlotMid returns the sink position at the middle of slot j.
func (tr *Trajectory) PosAtSlotMid(j int) Point {
	return tr.Path.At(tr.SlotMid(j))
}

// PosAtSlotStart returns the sink position at the beginning of slot j.
func (tr *Trajectory) PosAtSlotStart(j int) Point {
	return tr.Path.At(tr.SlotStart(j))
}

// SlotWindow returns the 0-based inclusive slot range [j0, j1] during which a
// sensor at p is within distance r of the sink, evaluating in-range status at
// slot midpoints. ok is false if no slot midpoint is within range.
func (tr *Trajectory) SlotWindow(p Point, r float64) (j0, j1 int, ok bool) {
	s0, s1, ok := tr.Path.CoverInterval(p, r)
	if !ok {
		return 0, 0, false
	}
	step := tr.Speed * tr.SlotLen
	// Slot j has midpoint (j+0.5)·step; midpoints within [s0, s1]:
	j0 = int(math.Ceil(s0/step - 0.5))
	j1 = int(math.Floor(s1/step - 0.5))
	if j0 < 0 {
		j0 = 0
	}
	if j1 > tr.SlotCount-1 {
		j1 = tr.SlotCount - 1
	}
	if j0 > j1 {
		// The cover interval is narrower than one slot and straddles no
		// midpoint; fall back to the single nearest slot if its midpoint
		// is actually in range.
		j := int((s0 + s1) / 2 / step)
		if j >= 0 && j < tr.SlotCount && tr.PosAtSlotMid(j).Dist(p) <= r {
			return j, j, true
		}
		return 0, 0, false
	}
	return j0, j1, true
}

// TourDuration returns the time the sink takes to traverse the whole path.
func (tr *Trajectory) TourDuration() float64 {
	return tr.Path.Length() / tr.Speed
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Nearest returns the arc length on the path closest to p and the distance
// at that point. Line and Polyline are handled analytically; other Path
// implementations fall back to dense sampling followed by local refinement.
func Nearest(path Path, p Point) (s float64, dist float64) {
	switch t := path.(type) {
	case *Line:
		return t.nearest(p)
	case *Polyline:
		return t.nearest(p)
	default:
		return nearestBySampling(path, p)
	}
}

func (l *Line) nearest(p Point) (float64, float64) {
	length := l.Length()
	u := l.B.Sub(l.A).Scale(1 / length)
	s := clamp(p.Sub(l.A).Dot(u), 0, length)
	return s, l.At(s).Dist(p)
}

func (pl *Polyline) nearest(p Point) (float64, float64) {
	bestS, bestD := 0.0, math.Inf(1)
	for i := 0; i < pl.segN; i++ {
		seg := Line{A: pl.pts[i], B: pl.pts[i+1]}
		s, d := seg.nearest(p)
		if d < bestD {
			bestD = d
			bestS = pl.cum[i] + s
		}
	}
	return bestS, bestD
}

func nearestBySampling(path Path, p Point) (float64, float64) {
	length := path.Length()
	const coarse = 512
	bestS, bestD := 0.0, math.Inf(1)
	for i := 0; i <= coarse; i++ {
		s := length * float64(i) / coarse
		if d := path.At(s).Dist(p); d < bestD {
			bestD, bestS = d, s
		}
	}
	// Local ternary refinement around the best coarse sample.
	lo := math.Max(0, bestS-length/coarse)
	hi := math.Min(length, bestS+length/coarse)
	for it := 0; it < 60; it++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if path.At(m1).Dist(p) < path.At(m2).Dist(p) {
			hi = m2
		} else {
			lo = m1
		}
	}
	s := (lo + hi) / 2
	return s, path.At(s).Dist(p)
}
