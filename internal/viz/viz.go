// Package viz renders text visualizations of tours: the slot-allocation
// timeline (who transmits when, at which rate tier) and per-sensor energy
// utilization bars. Pure text, meant for terminals, examples and debugging.
package viz

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"mobisink/internal/core"
)

// Timeline renders the slot ownership of an allocation as one or more
// fixed-width rows. Each column is a bucket of slots; the glyph encodes the
// best rate tier used in the bucket:
//
//	█ ≥ 100 kbps   ▓ ≥ 15 kbps   ▒ ≥ 8 kbps   ░ > 0   · idle
func Timeline(w io.Writer, inst *core.Instance, a *core.Allocation, width int) error {
	if inst == nil || a == nil {
		return errors.New("viz: nil instance or allocation")
	}
	if len(a.SlotOwner) != inst.T {
		return fmt.Errorf("viz: allocation covers %d slots, instance has %d", len(a.SlotOwner), inst.T)
	}
	if width <= 0 {
		width = 80
	}
	if width > inst.T {
		width = inst.T
	}
	perBucket := float64(inst.T) / float64(width)
	var sb strings.Builder
	used := 0
	for b := 0; b < width; b++ {
		lo := int(float64(b) * perBucket)
		hi := int(float64(b+1) * perBucket)
		if hi > inst.T {
			hi = inst.T
		}
		bestRate := 0.0
		for j := lo; j < hi; j++ {
			if i := a.SlotOwner[j]; i >= 0 {
				used++
				if r := inst.Sensors[i].RateAt(j); r > bestRate {
					bestRate = r
				}
			}
		}
		sb.WriteRune(glyph(bestRate))
	}
	occupied := 0
	for _, o := range a.SlotOwner {
		if o >= 0 {
			occupied++
		}
	}
	fmt.Fprintf(w, "tour timeline (%d slots, %d used = %.0f%%):\n", inst.T, occupied,
		100*float64(occupied)/float64(inst.T))
	fmt.Fprintf(w, "  |%s|\n", sb.String())
	fmt.Fprintf(w, "  █ ≥100kbps  ▓ ≥15kbps  ▒ ≥8kbps  ░ >0  · idle\n")
	return nil
}

func glyph(rate float64) rune {
	switch {
	case rate >= 100e3:
		return '█'
	case rate >= 15e3:
		return '▓'
	case rate >= 8e3:
		return '▒'
	case rate > 0:
		return '░'
	default:
		return '·'
	}
}

// EnergyBars renders the top `limit` sensors by energy utilization as
// horizontal bars of spent vs budget.
func EnergyBars(w io.Writer, inst *core.Instance, a *core.Allocation, limit int) error {
	if inst == nil || a == nil {
		return errors.New("viz: nil instance or allocation")
	}
	if limit <= 0 {
		limit = 10
	}
	used := inst.EnergyUsed(a)
	type row struct {
		id   int
		used float64
		frac float64
	}
	rows := make([]row, 0, len(used))
	for i, u := range used {
		if u <= 0 {
			continue
		}
		frac := 0.0
		if b := inst.Sensors[i].Budget; b > 0 {
			frac = u / b
		}
		rows = append(rows, row{i, u, frac})
	}
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].frac != rows[b].frac {
			return rows[a].frac > rows[b].frac
		}
		return rows[a].id < rows[b].id
	})
	if len(rows) > limit {
		rows = rows[:limit]
	}
	fmt.Fprintf(w, "energy utilization (top %d of %d transmitting sensors):\n", len(rows), countPositive(used))
	const barW = 30
	for _, r := range rows {
		fill := int(r.frac*barW + 0.5)
		if fill > barW {
			fill = barW
		}
		fmt.Fprintf(w, "  v%-4d [%s%s] %5.1f%%  %.3f J / %.3f J\n",
			r.id, strings.Repeat("#", fill), strings.Repeat("-", barW-fill),
			100*r.frac, r.used, inst.Sensors[r.id].Budget)
	}
	return nil
}

func countPositive(xs []float64) int {
	n := 0
	for _, x := range xs {
		if x > 0 {
			n++
		}
	}
	return n
}

// WindowMap renders sensor visibility windows along the tour: each row is
// one sensor (subsampled to `limit` rows), each column a slot bucket,
// showing where A(v) lies and which slots the sensor won.
func WindowMap(w io.Writer, inst *core.Instance, a *core.Allocation, limit, width int) error {
	if inst == nil || a == nil {
		return errors.New("viz: nil instance or allocation")
	}
	if width <= 0 {
		width = 80
	}
	if width > inst.T {
		width = inst.T
	}
	if limit <= 0 {
		limit = 20
	}
	// Pick sensors with windows, evenly spaced by start slot.
	var ids []int
	for i := range inst.Sensors {
		if inst.Sensors[i].Start >= 0 {
			ids = append(ids, i)
		}
	}
	sort.Slice(ids, func(x, y int) bool { return inst.Sensors[ids[x]].Start < inst.Sensors[ids[y]].Start })
	if len(ids) > limit {
		sampled := make([]int, 0, limit)
		for k := 0; k < limit; k++ {
			sampled = append(sampled, ids[k*len(ids)/limit])
		}
		ids = sampled
	}
	perBucket := float64(inst.T) / float64(width)
	fmt.Fprintf(w, "visibility windows (− window, ● allocated):\n")
	for _, i := range ids {
		s := &inst.Sensors[i]
		line := make([]rune, width)
		for b := range line {
			line[b] = ' '
		}
		for j := s.Start; j <= s.End; j++ {
			b := int(float64(j) / perBucket)
			if b >= width {
				b = width - 1
			}
			if line[b] != '●' {
				line[b] = '−'
			}
			if a.SlotOwner[j] == i {
				line[b] = '●'
			}
		}
		fmt.Fprintf(w, "  v%-4d |%s|\n", i, string(line))
	}
	return nil
}
