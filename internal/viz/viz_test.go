package viz

import (
	"bytes"
	"strings"
	"testing"

	"mobisink/internal/core"
	"mobisink/internal/network"
	"mobisink/internal/radio"
)

func setup(t *testing.T) (*core.Instance, *core.Allocation) {
	t.Helper()
	dep, err := network.Generate(network.Params{N: 40, PathLength: 2000, MaxOffset: 150, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	_ = dep.SetUniformBudgets(2)
	inst, err := core.BuildInstance(dep, radio.Paper2013(), 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.OfflineAppro(inst, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return inst, a
}

func TestTimeline(t *testing.T) {
	inst, a := setup(t)
	var buf bytes.Buffer
	if err := Timeline(&buf, inst, a, 60); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "tour timeline") {
		t.Error("missing header")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 3 {
		t.Fatal("too few lines")
	}
	// The bar row must be exactly 60 glyphs between the pipes.
	bar := strings.TrimSpace(lines[1])
	inner := strings.Trim(bar, "|")
	if got := len([]rune(inner)); got != 60 {
		t.Errorf("bar width = %d runes, want 60", got)
	}
	// A reasonable allocation uses some slots.
	if !strings.ContainsAny(inner, "█▓▒░") {
		t.Error("timeline shows no transmissions")
	}
}

func TestTimelineValidation(t *testing.T) {
	inst, a := setup(t)
	var buf bytes.Buffer
	if err := Timeline(&buf, nil, a, 10); err == nil {
		t.Error("expected nil-instance error")
	}
	if err := Timeline(&buf, inst, nil, 10); err == nil {
		t.Error("expected nil-allocation error")
	}
	bad := &core.Allocation{SlotOwner: make([]int, 3)}
	if err := Timeline(&buf, inst, bad, 10); err == nil {
		t.Error("expected length error")
	}
	// Width larger than T clamps; zero width defaults.
	if err := Timeline(&buf, inst, a, 100000); err != nil {
		t.Error(err)
	}
	if err := Timeline(&buf, inst, a, 0); err != nil {
		t.Error(err)
	}
}

func TestEnergyBars(t *testing.T) {
	inst, a := setup(t)
	var buf bytes.Buffer
	if err := EnergyBars(&buf, inst, a, 5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "energy utilization") {
		t.Error("missing header")
	}
	if strings.Count(out, "\n") > 7 {
		t.Errorf("more rows than limit: %q", out)
	}
	if !strings.Contains(out, "J /") {
		t.Error("missing joule columns")
	}
	if err := EnergyBars(&buf, nil, a, 5); err == nil {
		t.Error("expected nil error")
	}
	if err := EnergyBars(&buf, inst, a, 0); err != nil {
		t.Error("zero limit must default")
	}
}

func TestWindowMap(t *testing.T) {
	inst, a := setup(t)
	var buf bytes.Buffer
	if err := WindowMap(&buf, inst, a, 8, 60); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "visibility windows") {
		t.Error("missing header")
	}
	rows := strings.Count(out, "|")
	if rows == 0 {
		t.Error("no window rows")
	}
	if !strings.Contains(out, "−") {
		t.Error("no window marks")
	}
	if err := WindowMap(&buf, inst, nil, 8, 60); err == nil {
		t.Error("expected nil error")
	}
	if err := WindowMap(&buf, inst, a, 0, 0); err != nil {
		t.Error("defaults must work")
	}
}
