package exp

import (
	"bytes"
	"strings"
	"testing"
)

// smallCfg keeps unit-test experiment runs fast.
func smallCfg() Config {
	return Config{
		Sizes:  []int{40, 80},
		Trials: 3,
		Seed:   1,
	}
}

func TestSeedForDecorrelates(t *testing.T) {
	a := seedFor(1, 100, 0)
	b := seedFor(1, 100, 1)
	c := seedFor(1, 200, 0)
	d := seedFor(2, 100, 0)
	if a == b || a == c || a == d {
		t.Errorf("seeds collide: %d %d %d %d", a, b, c, d)
	}
	if a != seedFor(1, 100, 0) {
		t.Error("seedFor must be deterministic")
	}
	if a < 0 || b < 0 || c < 0 {
		t.Error("seeds must be non-negative")
	}
}

func TestFig2Small(t *testing.T) {
	tbl, err := Fig2(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	// 3 settings × 2 sizes × 2 algorithms.
	if got := len(tbl.Points); got != 12 {
		t.Fatalf("points = %d, want 12", got)
	}
	for _, p := range tbl.Points {
		if p.Mb.Mean <= 0 {
			t.Errorf("%s n=%d %s: zero throughput", p.Setting, p.N, p.Algorithm)
		}
		if p.Mb.N != 3 {
			t.Errorf("trials = %d", p.Mb.N)
		}
		if p.FracUB <= 0 || p.FracUB > 1+1e-9 {
			t.Errorf("fraction of UB = %v out of (0,1]", p.FracUB)
		}
	}
	// Offline dominates online on every cell (same instances).
	for _, setting := range tbl.settings() {
		for _, n := range tbl.sizes() {
			off, ok1 := tbl.point(setting, n, AlgOfflineAppro)
			on, ok2 := tbl.point(setting, n, AlgOnlineAppro)
			if !ok1 || !ok2 {
				t.Fatalf("missing points for %s n=%d", setting, n)
			}
			if on.Mb.Mean > off.Mb.Mean*1.02 {
				t.Errorf("%s n=%d: online %v above offline %v", setting, n, on.Mb.Mean, off.Mb.Mean)
			}
		}
	}
}

func TestFig3Small(t *testing.T) {
	cfg := smallCfg()
	cfg.Sizes = []int{60}
	tbl, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tbl.Points); got != 12 { // 3 speeds × 1 size × 4 algorithms
		t.Fatalf("points = %d, want 12", got)
	}
	for _, setting := range tbl.settings() {
		mm, _ := tbl.point(setting, 60, AlgOfflineMaxMatch)
		omm, _ := tbl.point(setting, 60, AlgOnlineMaxMatch)
		// Exact offline optimum must dominate everything.
		for _, alg := range tbl.algorithms() {
			p, _ := tbl.point(setting, 60, alg)
			if p.Mb.Mean > mm.Mb.Mean*1.001 {
				t.Errorf("%s: %s %v above exact optimum %v", setting, alg, p.Mb.Mean, mm.Mb.Mean)
			}
		}
		if omm.Mb.Mean <= 0 {
			t.Errorf("%s: online maxmatch zero", setting)
		}
		// Offline_MaxMatch is exact: fraction of the (loose) upper bound
		// should still be meaningful.
		if mm.FracUB <= 0.3 {
			t.Errorf("%s: optimum only %v of upper bound — bound far too loose?", setting, mm.FracUB)
		}
	}
}

func TestFig4Small(t *testing.T) {
	cfg := smallCfg()
	cfg.Sizes = []int{50}
	a, err := Fig4a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Points) != 5 { // 5 taus × 1 size × 1 algorithm
		t.Fatalf("fig4a points = %d", len(a.Points))
	}
	b, err := Fig4b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Points) != 5 {
		t.Fatalf("fig4b points = %d", len(b.Points))
	}
	// Throughput decreases with tau (paper Fig. 4): compare tau=1 vs tau=16.
	first := a.Points[0]
	last := a.Points[len(a.Points)-1]
	if first.Mb.Mean <= last.Mb.Mean {
		t.Errorf("fig4a: tau=1 (%v) should beat tau=16 (%v)", first.Mb.Mean, last.Mb.Mean)
	}
}

func TestFiguresRegistry(t *testing.T) {
	for _, id := range []string{"2", "3", "4a", "4b"} {
		if Figures[id] == nil {
			t.Errorf("figure %q missing from registry", id)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	cfg := smallCfg()
	cfg.Sizes = []int{40}
	tbl, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(tbl.Points) {
		t.Fatalf("csv lines = %d, want %d", len(lines), 1+len(tbl.Points))
	}
	if !strings.HasPrefix(lines[0], "figure,setting,n,algorithm") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(buf.String(), "fig2") {
		t.Error("figure name missing")
	}
}

func TestRender(t *testing.T) {
	cfg := smallCfg()
	cfg.Sizes = []int{40}
	tbl, err := Fig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig2", "Offline_Appro", "Online_Appro", "rs=5m/s,tau=1s", "throughput"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q", want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if len(c.Sizes) != 6 || c.Trials != 50 || c.Jitter != 0.5 ||
		c.Workers < 1 || c.FixedPower != 0.3 || c.PathLength != 10000 || c.MaxOffset != 180 ||
		c.PanelAreaMM2 != 100 || c.Accrual != 3 {
		t.Errorf("defaults wrong: %+v", c)
	}
	// Explicit zero jitter is expressible with a negative sentinel.
	c2 := Config{Jitter: -1}.withDefaults()
	if c2.Jitter != 0 {
		t.Errorf("negative jitter must clamp to 0, got %v", c2.Jitter)
	}
}

func TestRunAlgorithmUnknown(t *testing.T) {
	if _, err := runAlgorithm("nope", nil); err == nil {
		t.Error("expected unknown-algorithm error")
	}
}
