package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestMessages(t *testing.T) {
	cfg := Config{Sizes: []int{40, 80}, Trials: 2, Seed: 3}
	tbl, err := Messages(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Points) != 2 {
		t.Fatalf("points = %d", len(tbl.Points))
	}
	prev := 0.0
	for _, p := range tbl.Points {
		if p.Acks > float64(p.AcksBound) {
			t.Errorf("n=%d: acks %v above 2n", p.N, p.Acks)
		}
		if p.Total > float64(p.TotalBound) {
			t.Errorf("n=%d: total %v above bound %d", p.N, p.Total, p.TotalBound)
		}
		if p.Probes <= 0 || p.Total <= 0 {
			t.Errorf("n=%d: empty message stats", p.N)
		}
		if p.Total < prev {
			t.Errorf("total messages should grow with n")
		}
		prev = p.Total
	}
	var csvBuf, renderBuf bytes.Buffer
	if err := tbl.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csvBuf.String(), "n,intervals,probes") {
		t.Errorf("csv header: %q", csvBuf.String()[:30])
	}
	if err := tbl.Render(&renderBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(renderBuf.String(), "Theorem 3") {
		t.Error("render missing title")
	}
}

func TestOptimalityGap(t *testing.T) {
	cfg := Config{Sizes: []int{4, 6}, Trials: 2, Seed: 5}
	tbl, err := OptimalityGap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Points) != 2 {
		t.Fatalf("points = %d", len(tbl.Points))
	}
	for _, p := range tbl.Points {
		if p.Solved == 0 {
			t.Logf("n=%d: no instance solved to optimality (nodes %v)", p.N, p.MeanNodes)
			continue
		}
		if p.ApproRatio.Mean < 0.5-1e-9 || p.ApproRatio.Mean > 1+1e-9 {
			t.Errorf("n=%d: appro ratio %v outside [1/2, 1]", p.N, p.ApproRatio.Mean)
		}
		if p.ApproRatio.Min < 0.5-1e-9 {
			t.Errorf("n=%d: worst ratio %v below the 1/2 guarantee", p.N, p.ApproRatio.Min)
		}
		if p.OnlineRatio.Mean > 1+1e-9 {
			t.Errorf("n=%d: online above optimum", p.N)
		}
	}
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "appro/OPT") {
		t.Error("render missing column")
	}
}

// The default sweep downsizes automatically when fed figure-style sizes.
func TestOptimalityGapDefaultSizes(t *testing.T) {
	cfg := Config{Trials: 1, Seed: 1}
	tbl, err := OptimalityGap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Points) != 4 || tbl.Points[0].N != 4 {
		t.Fatalf("default downsizing not applied: %+v", tbl.Points)
	}
}

func TestAccrualSensitivity(t *testing.T) {
	cfg := Config{Trials: 2, Seed: 4}
	tbl, err := AccrualSensitivity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Points) != 8 { // 4 accruals × 2 settings
		t.Fatalf("points = %d", len(tbl.Points))
	}
	// Throughput must be non-decreasing in the accrual for each setting.
	bySetting := map[string][]AccrualPoint{}
	for _, p := range tbl.Points {
		bySetting[p.Setting] = append(bySetting[p.Setting], p)
	}
	for setting, pts := range bySetting {
		for i := 1; i < len(pts); i++ {
			if pts[i].Mb.Mean < pts[i-1].Mb.Mean*0.98 {
				t.Errorf("%s: throughput fell from accrual %g (%v) to %g (%v)",
					setting, pts[i-1].Accrual, pts[i-1].Mb.Mean, pts[i].Accrual, pts[i].Mb.Mean)
			}
		}
	}
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "accrual") {
		t.Error("output missing header")
	}
}

func TestContention(t *testing.T) {
	cfg := Config{Sizes: []int{60}, Trials: 2, Seed: 6}
	tbl, err := Contention(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Points) != 5 { // 5 windows × 1 size
		t.Fatalf("points = %d", len(tbl.Points))
	}
	if tbl.Points[0].AckWindow != 0 || tbl.Points[0].FracIdeal != 1 {
		t.Fatalf("ideal row wrong: %+v", tbl.Points[0])
	}
	for _, p := range tbl.Points {
		if p.FracIdeal < 0 || p.FracIdeal > 1.0001 {
			t.Errorf("w=%d: fraction %v outside [0,1]", p.AckWindow, p.FracIdeal)
		}
	}
	// Wider windows recover more throughput (compare w=4 and w=64).
	if tbl.Points[4].FracIdeal < tbl.Points[1].FracIdeal {
		t.Errorf("w=64 (%v) below w=4 (%v)", tbl.Points[4].FracIdeal, tbl.Points[1].FracIdeal)
	}
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ack_window") {
		t.Error("missing header")
	}
}

func TestLatency(t *testing.T) {
	cfg := Config{Trials: 2, Seed: 8}
	tbl, err := Latency(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Points) != 5 {
		t.Fatalf("points = %d", len(tbl.Points))
	}
	for i := 1; i < len(tbl.Points); i++ {
		prev, cur := tbl.Points[i-1], tbl.Points[i]
		if cur.Speed <= prev.Speed {
			t.Fatal("speeds not ascending")
		}
		// Faster sink: less data per tour, lower p95 delivery delay.
		if cur.Mb.Mean >= prev.Mb.Mean {
			t.Errorf("throughput did not fall from %g to %g m/s", prev.Speed, cur.Speed)
		}
		if cur.P95DelayMin > prev.P95DelayMin*1.05 {
			t.Errorf("p95 delay rose from %g to %g m/s", prev.Speed, cur.Speed)
		}
	}
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "delay") {
		t.Error("missing header")
	}
}
