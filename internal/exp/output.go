package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteCSV emits the table as CSV with one row per (setting, n, algorithm).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"figure", "setting", "n", "algorithm",
		"throughput_mb_mean", "throughput_mb_stddev", "throughput_mb_ci95",
		"trials", "fraction_of_upper_bound"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range t.Points {
		row := []string{
			t.Name, p.Setting, strconv.Itoa(p.N), p.Algorithm,
			fmt.Sprintf("%.4f", p.Mb.Mean),
			fmt.Sprintf("%.4f", p.Mb.StdDev),
			fmt.Sprintf("%.4f", p.Mb.CI95),
			strconv.Itoa(p.Mb.N),
			fmt.Sprintf("%.4f", p.FracUB),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// settings returns the distinct settings in first-seen order.
func (t *Table) settings() []string {
	var out []string
	seen := map[string]bool{}
	for _, p := range t.Points {
		if !seen[p.Setting] {
			seen[p.Setting] = true
			out = append(out, p.Setting)
		}
	}
	return out
}

// algorithms returns the distinct algorithms in first-seen order.
func (t *Table) algorithms() []string {
	var out []string
	seen := map[string]bool{}
	for _, p := range t.Points {
		if !seen[p.Algorithm] {
			seen[p.Algorithm] = true
			out = append(out, p.Algorithm)
		}
	}
	return out
}

// sizes returns the distinct sizes, ascending.
func (t *Table) sizes() []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range t.Points {
		if !seen[p.N] {
			seen[p.N] = true
			out = append(out, p.N)
		}
	}
	sort.Ints(out)
	return out
}

func (t *Table) point(setting string, n int, alg string) (Point, bool) {
	for _, p := range t.Points {
		if p.Setting == setting && p.N == n && p.Algorithm == alg {
			return p, true
		}
	}
	return Point{}, false
}

// Render writes a human-readable report: per setting, a table of throughput
// (Mb/tour) by n and algorithm, followed by an ASCII chart of the means.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.Name, t.Description); err != nil {
		return err
	}
	algs := t.algorithms()
	for _, setting := range t.settings() {
		fmt.Fprintf(w, "\n-- %s --\n", setting)
		fmt.Fprintf(w, "%8s", "n")
		for _, a := range algs {
			fmt.Fprintf(w, " %18s", a)
		}
		fmt.Fprintln(w)
		for _, n := range t.sizes() {
			fmt.Fprintf(w, "%8d", n)
			for _, a := range algs {
				if p, ok := t.point(setting, n, a); ok {
					fmt.Fprintf(w, " %11.2f ±%5.2f", p.Mb.Mean, p.Mb.CI95)
				} else {
					fmt.Fprintf(w, " %18s", "-")
				}
			}
			fmt.Fprintln(w)
		}
		t.renderChart(w, setting, algs)
	}
	return nil
}

// renderChart draws a fixed-height ASCII chart of mean throughput vs n for
// one setting.
func (t *Table) renderChart(w io.Writer, setting string, algs []string) {
	const height = 12
	sizes := t.sizes()
	maxV := 0.0
	series := make(map[string][]float64, len(algs))
	for _, a := range algs {
		vals := make([]float64, 0, len(sizes))
		for _, n := range sizes {
			if p, ok := t.point(setting, n, a); ok {
				vals = append(vals, p.Mb.Mean)
				if p.Mb.Mean > maxV {
					maxV = p.Mb.Mean
				}
			} else {
				vals = append(vals, 0)
			}
		}
		series[a] = vals
	}
	if maxV == 0 {
		return
	}
	marks := []byte{'o', '*', '+', 'x', '#', '@'}
	fmt.Fprintf(w, "\n  throughput (Mb/tour), columns = n %v\n", sizes)
	colw := 6
	for row := height; row >= 1; row-- {
		thresh := maxV * float64(row) / height
		line := make([]byte, len(sizes)*colw)
		for i := range line {
			line[i] = ' '
		}
		for ai, a := range algs {
			for si, v := range series[a] {
				if v >= thresh {
					pos := si*colw + colw/2
					if line[pos] == ' ' {
						line[pos] = marks[ai%len(marks)]
					} else {
						line[pos] = '%' // overlapping series
					}
				}
			}
		}
		fmt.Fprintf(w, "%8.1f |%s\n", thresh, strings.TrimRight(string(line), " "))
	}
	fmt.Fprintf(w, "%8s +%s\n", "", strings.Repeat("-", len(sizes)*colw))
	legend := make([]string, 0, len(algs))
	for ai, a := range algs {
		legend = append(legend, fmt.Sprintf("%c=%s", marks[ai%len(marks)], a))
	}
	fmt.Fprintf(w, "  %s (%%=overlap)\n", strings.Join(legend, "  "))
}
