package exp

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strconv"

	"mobisink/internal/core"
	"mobisink/internal/energy"
	"mobisink/internal/network"
	"mobisink/internal/parallel"
	"mobisink/internal/radio"
	"mobisink/internal/solve"
	"mobisink/internal/stats"
)

// FleetPoint is one row of the fleet sweep: one (K, n, algorithm) cell.
type FleetPoint struct {
	K         int // mobile sink fleet size
	N         int
	Algorithm string
	Mb        stats.Summary // throughput per tour, megabits
	FracUB    float64       // mean fraction of the instance upper bound
}

// FleetTable aggregates the sweep.
type FleetTable struct {
	Points []FleetPoint
}

// FleetSweep extends the paper's single-sink evaluation to sink fleets:
// the highway is split into K equal segments, each toured concurrently by
// its own sink, and the offline schedulers run on the joint K-sink
// instance (K = 1 is the legacy single-sink stack bit-for-bit). Budgets
// are sized for the K = 1 tour duration at every K, so the sweep isolates
// the scheduling effect of more sinks: shorter per-sink tours concentrate
// visibility windows into fewer, overlapping absolute slots, and the
// cross-sink exclusivity constraint starts to bind.
func FleetSweep(cfg Config) (*FleetTable, error) {
	cfg = cfg.withDefaults()
	sizes := cfg.Sizes
	if len(sizes) == 6 && sizes[0] == 100 {
		sizes = []int{100, 300, 600} // default downsized sweep
	}
	const speed, tau = 5.0, 1.0
	algorithms := []string{AlgOfflineAppro, "Offline_WaterFill"}
	tbl := &FleetTable{}
	for _, k := range []int{1, 2, 4} {
		for _, n := range sizes {
			insts := make([]*core.Instance, cfg.Trials)
			ubs := make([]float64, cfg.Trials)
			if err := parallel.ForEach(cfg.Trials, cfg.Workers, func(t int) error {
				inst, err := buildFleetTrial(cfg, k, n, speed, tau, t)
				if err != nil {
					return fmt.Errorf("exp: building K=%d n=%d trial %d: %w", k, n, t, err)
				}
				insts[t] = inst
				ubs[t] = inst.UpperBound()
				return nil
			}); err != nil {
				return nil, err
			}
			for _, alg := range algorithms {
				items, err := solve.Batch(context.Background(), alg, insts, solve.Options{}, cfg.Workers)
				if err != nil {
					return nil, fmt.Errorf("exp: unknown algorithm %q", alg)
				}
				var mbs, fracs []float64
				for t, item := range items {
					if item.Err != nil {
						return nil, fmt.Errorf("exp: %s on K=%d n=%d trial %d: %w", alg, k, n, t, item.Err)
					}
					observeRun(alg, item.Alloc.Data, item.Elapsed)
					mbs = append(mbs, core.ThroughputMb(item.Alloc.Data))
					if ubs[t] > 0 {
						fracs = append(fracs, item.Alloc.Data/ubs[t])
					}
				}
				sum, err := stats.Summarize(mbs)
				if err != nil {
					return nil, err
				}
				tbl.Points = append(tbl.Points, FleetPoint{
					K: k, N: n, Algorithm: alg, Mb: sum, FracUB: stats.Mean(fracs),
				})
			}
		}
	}
	return tbl, nil
}

// buildFleetTrial constructs one fleet trial: a random topology split
// into K per-sink segments, with budgets sized for the K = 1 tour.
func buildFleetTrial(cfg Config, k, n int, speed, tau float64, trial int) (*core.Instance, error) {
	seed := seedFor(cfg.Seed, n*16+k, trial)
	dep, err := network.Generate(network.Params{
		N: n, PathLength: cfg.PathLength, MaxOffset: cfg.MaxOffset, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	h, err := energy.NewSolar(cfg.PanelAreaMM2, cfg.Condition, 1.0)
	if err != nil {
		return nil, err
	}
	tourDur := cfg.PathLength / speed
	rng := rand.New(rand.NewSource(seed ^ 0x5DEECE66D))
	if err := dep.AssignSteadyStateBudgets(h, tourDur*cfg.Accrual, cfg.Jitter, rng); err != nil {
		return nil, err
	}
	if k > 1 {
		if err := dep.SplitSinks(k, nil); err != nil {
			return nil, err
		}
	}
	return core.BuildFleetInstance(dep, radio.Paper2013(), speed, tau)
}

// WriteCSV emits the fleet table.
func (t *FleetTable) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"k", "n", "algorithm",
		"throughput_mb_mean", "throughput_mb_ci95", "frac_upper_bound"}); err != nil {
		return err
	}
	for _, p := range t.Points {
		if err := cw.Write([]string{
			strconv.Itoa(p.K), strconv.Itoa(p.N), p.Algorithm,
			fmt.Sprintf("%.4f", p.Mb.Mean), fmt.Sprintf("%.4f", p.Mb.CI95),
			fmt.Sprintf("%.4f", p.FracUB),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Render prints the fleet table.
func (t *FleetTable) Render(w io.Writer) error {
	fmt.Fprintln(w, "== fleet: K-sink sweep, highway split into K concurrent segments (K=1 is the legacy stack) ==")
	fmt.Fprintf(w, "%4s %6s %20s %14s %10s\n", "K", "n", "algorithm", "Mb/tour", "of UB")
	for _, p := range t.Points {
		fmt.Fprintf(w, "%4d %6d %20s %8.2f ±%4.2f %9.1f%%\n",
			p.K, p.N, p.Algorithm, p.Mb.Mean, p.Mb.CI95, 100*p.FracUB)
	}
	return nil
}
