package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"time"

	"mobisink/internal/core"
	"mobisink/internal/energy"
	"mobisink/internal/exact"
	"mobisink/internal/network"
	"mobisink/internal/online"
	"mobisink/internal/radio"
	"mobisink/internal/stats"
	"mobisink/internal/traffic"
)

// MsgPoint is one row of the message-complexity experiment (Theorem 3):
// the online protocol's message counts per tour, averaged over trials.
type MsgPoint struct {
	N          int
	Intervals  int
	Probes     float64
	Acks       float64
	Schedules  float64
	Finishes   float64
	Total      float64
	AcksBound  int // 2n (Lemma 1 ⇒ each sensor acks ≤ twice)
	TotalBound int // 2n + 3·K
}

// MsgTable aggregates the sweep.
type MsgTable struct {
	Points []MsgPoint
}

// Messages measures the online protocol's per-tour message complexity
// across network sizes (paper Theorem 3: O(n) messages), at the default
// (5 m/s, 1 s) setting.
func Messages(cfg Config) (*MsgTable, error) {
	cfg = cfg.withDefaults()
	tbl := &MsgTable{}
	for _, n := range cfg.Sizes {
		var probes, acks, scheds, fins, totals []float64
		intervals := 0
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := seedFor(cfg.Seed, n, trial)
			dep, err := network.Generate(network.Params{
				N: n, PathLength: cfg.PathLength, MaxOffset: cfg.MaxOffset, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			h, err := energy.NewSolar(cfg.PanelAreaMM2, cfg.Condition, 1.0)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(seed))
			if err := dep.AssignSteadyStateBudgets(h, cfg.Accrual*cfg.PathLength/5, cfg.Jitter, rng); err != nil {
				return nil, err
			}
			inst, err := core.BuildInstance(dep, radio.Paper2013(), 5, 1)
			if err != nil {
				return nil, err
			}
			res, err := online.Run(inst, &online.Appro{})
			if err != nil {
				return nil, err
			}
			if err := res.CheckLemma1(); err != nil {
				return nil, fmt.Errorf("exp: lemma 1 violated at n=%d: %w", n, err)
			}
			probes = append(probes, float64(res.Messages.Probes))
			acks = append(acks, float64(res.Messages.Acks))
			scheds = append(scheds, float64(res.Messages.Schedules))
			fins = append(fins, float64(res.Messages.Finishes))
			totals = append(totals, float64(res.Messages.Total()))
			intervals = res.Intervals
		}
		p := MsgPoint{
			N:          n,
			Intervals:  intervals,
			Probes:     stats.Mean(probes),
			Acks:       stats.Mean(acks),
			Schedules:  stats.Mean(scheds),
			Finishes:   stats.Mean(fins),
			Total:      stats.Mean(totals),
			AcksBound:  2 * n,
			TotalBound: 2*n + 3*intervals,
		}
		if p.Acks > float64(p.AcksBound) {
			return nil, fmt.Errorf("exp: mean acks %v exceed the 2n bound at n=%d", p.Acks, n)
		}
		tbl.Points = append(tbl.Points, p)
	}
	return tbl, nil
}

// WriteCSV emits the message table.
func (t *MsgTable) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"n", "intervals", "probes", "acks", "schedules",
		"finishes", "total", "acks_bound_2n", "total_bound"}); err != nil {
		return err
	}
	for _, p := range t.Points {
		if err := cw.Write([]string{
			strconv.Itoa(p.N), strconv.Itoa(p.Intervals),
			fmt.Sprintf("%.1f", p.Probes), fmt.Sprintf("%.1f", p.Acks),
			fmt.Sprintf("%.1f", p.Schedules), fmt.Sprintf("%.1f", p.Finishes),
			fmt.Sprintf("%.1f", p.Total),
			strconv.Itoa(p.AcksBound), strconv.Itoa(p.TotalBound),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Render prints the message table.
func (t *MsgTable) Render(w io.Writer) error {
	fmt.Fprintln(w, "== messages: online protocol message complexity per tour (Theorem 3) ==")
	fmt.Fprintf(w, "%8s %10s %8s %8s %10s %9s %8s %10s %11s\n",
		"n", "intervals", "probes", "acks", "schedules", "finishes", "total", "bound(2n)", "bound(tot)")
	for _, p := range t.Points {
		fmt.Fprintf(w, "%8d %10d %8.1f %8.1f %10.1f %9.1f %8.1f %10d %11d\n",
			p.N, p.Intervals, p.Probes, p.Acks, p.Schedules, p.Finishes, p.Total,
			p.AcksBound, p.TotalBound)
	}
	return nil
}

// GapPoint is one row of the optimality-gap experiment: the approximation
// algorithms against the exact branch-and-bound optimum on small instances.
type GapPoint struct {
	N           int
	Trials      int
	Solved      int           // trials where B&B proved optimality
	ApproRatio  stats.Summary // OfflineAppro / OPT over solved trials
	OnlineRatio stats.Summary // Online_Appro / OPT
	ApproTimeMs float64
	ExactTimeMs float64
	MeanNodes   float64
}

// GapTable aggregates the optimality-gap sweep.
type GapTable struct {
	Points []GapPoint
}

// OptimalityGap measures how close the approximation algorithms come to
// the true optimum on downsized instances (short path, so the exact
// branch-and-bound terminates), and how much slower exactness is — the
// paper's §I.B argument against exact/ILP scheduling.
func OptimalityGap(cfg Config) (*GapTable, error) {
	cfg = cfg.withDefaults()
	sizes := cfg.Sizes
	if len(sizes) == 6 && sizes[0] == 100 {
		sizes = []int{4, 8, 12, 16} // default downsized sweep
	}
	tbl := &GapTable{}
	for _, n := range sizes {
		var ratios, onRatios []float64
		var approMs, exactMs, nodes float64
		solved := 0
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := seedFor(cfg.Seed, n, trial)
			dep, err := network.Generate(network.Params{
				N: n, PathLength: 600, MaxOffset: cfg.MaxOffset, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(seed))
			h, err := energy.NewSolar(cfg.PanelAreaMM2, cfg.Condition, 1.0)
			if err != nil {
				return nil, err
			}
			if err := dep.AssignSteadyStateBudgets(h, cfg.Accrual*600/5, cfg.Jitter, rng); err != nil {
				return nil, err
			}
			inst, err := core.BuildInstance(dep, radio.Paper2013(), 10, 1)
			if err != nil {
				return nil, err
			}
			t0 := time.Now()
			ap, err := core.OfflineAppro(inst, core.Options{})
			if err != nil {
				return nil, err
			}
			approMs += float64(time.Since(t0).Microseconds()) / 1000
			on, err := online.Run(inst, &online.Appro{})
			if err != nil {
				return nil, err
			}
			t1 := time.Now()
			res, err := exact.Solve(inst, exact.Options{MaxNodes: 3_000_000, Incumbent: ap})
			if err != nil {
				return nil, err
			}
			exactMs += float64(time.Since(t1).Microseconds()) / 1000
			nodes += float64(res.Nodes)
			if !res.Optimal || res.Alloc.Data == 0 {
				continue
			}
			solved++
			ratios = append(ratios, ap.Data/res.Alloc.Data)
			onRatios = append(onRatios, on.Data/res.Alloc.Data)
		}
		p := GapPoint{
			N:           n,
			Trials:      cfg.Trials,
			Solved:      solved,
			ApproTimeMs: approMs / float64(cfg.Trials),
			ExactTimeMs: exactMs / float64(cfg.Trials),
			MeanNodes:   nodes / float64(cfg.Trials),
		}
		if len(ratios) > 0 {
			p.ApproRatio, _ = stats.Summarize(ratios)
			p.OnlineRatio, _ = stats.Summarize(onRatios)
		}
		tbl.Points = append(tbl.Points, p)
	}
	return tbl, nil
}

// WriteCSV emits the gap table.
func (t *GapTable) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"n", "trials", "solved", "appro_over_opt_mean",
		"appro_over_opt_min", "online_over_opt_mean", "appro_ms", "exact_ms", "mean_nodes"}); err != nil {
		return err
	}
	for _, p := range t.Points {
		if err := cw.Write([]string{
			strconv.Itoa(p.N), strconv.Itoa(p.Trials), strconv.Itoa(p.Solved),
			fmt.Sprintf("%.4f", p.ApproRatio.Mean), fmt.Sprintf("%.4f", p.ApproRatio.Min),
			fmt.Sprintf("%.4f", p.OnlineRatio.Mean),
			fmt.Sprintf("%.3f", p.ApproTimeMs), fmt.Sprintf("%.3f", p.ExactTimeMs),
			fmt.Sprintf("%.0f", p.MeanNodes),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Render prints the gap table.
func (t *GapTable) Render(w io.Writer) error {
	fmt.Fprintln(w, "== gap: approximation quality vs exact optimum (downsized instances) ==")
	fmt.Fprintf(w, "%6s %7s %7s %12s %12s %13s %10s %10s %12s\n",
		"n", "trials", "solved", "appro/OPT", "worst", "online/OPT", "appro ms", "exact ms", "B&B nodes")
	for _, p := range t.Points {
		fmt.Fprintf(w, "%6d %7d %7d %12.4f %12.4f %13.4f %10.3f %10.3f %12.0f\n",
			p.N, p.Trials, p.Solved, p.ApproRatio.Mean, p.ApproRatio.Min,
			p.OnlineRatio.Mean, p.ApproTimeMs, p.ExactTimeMs, p.MeanNodes)
	}
	return nil
}

// AccrualPoint is one row of the budget-calibration sensitivity study.
type AccrualPoint struct {
	Accrual float64
	Setting string
	Mb      stats.Summary
}

// AccrualTable aggregates the sweep.
type AccrualTable struct {
	Points []AccrualPoint
}

// AccrualSensitivity sweeps the stored-energy carryover multiple (DESIGN.md
// §5b substitution 2) at n = 300 for the strongest and weakest paper
// settings, quantifying how the calibration choice moves absolute
// throughput (the figures' *shapes* are budget-scale invariant as long as
// budgets stay duration-proportional, which every accrual value preserves).
func AccrualSensitivity(cfg Config) (*AccrualTable, error) {
	cfg = cfg.withDefaults()
	tbl := &AccrualTable{}
	for _, accrual := range []float64{1, 2, 3, 5} {
		for _, s := range []Setting{{5, 1}, {30, 4}} {
			var mbs []float64
			for trial := 0; trial < cfg.Trials; trial++ {
				c := cfg
				c.Accrual = accrual
				cell := cell{setting: s, n: 300, algorithms: []string{AlgOfflineAppro}}
				r := runTrial(c, cell, trial)
				if r.err != nil {
					return nil, r.err
				}
				mbs = append(mbs, core.ThroughputMb(r.bits[AlgOfflineAppro]))
			}
			sum, err := stats.Summarize(mbs)
			if err != nil {
				return nil, err
			}
			tbl.Points = append(tbl.Points, AccrualPoint{Accrual: accrual, Setting: s.String(), Mb: sum})
		}
	}
	return tbl, nil
}

// WriteCSV emits the accrual table.
func (t *AccrualTable) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"accrual", "setting", "throughput_mb_mean", "throughput_mb_ci95"}); err != nil {
		return err
	}
	for _, p := range t.Points {
		if err := cw.Write([]string{
			fmt.Sprintf("%g", p.Accrual), p.Setting,
			fmt.Sprintf("%.4f", p.Mb.Mean), fmt.Sprintf("%.4f", p.Mb.CI95),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Render prints the accrual table.
func (t *AccrualTable) Render(w io.Writer) error {
	fmt.Fprintln(w, "== accrual: budget-carryover sensitivity (Offline_Appro, n=300) ==")
	fmt.Fprintf(w, "%8s %18s %14s\n", "accrual", "setting", "Mb/tour")
	for _, p := range t.Points {
		fmt.Fprintf(w, "%8g %18s %8.2f ±%4.2f\n", p.Accrual, p.Setting, p.Mb.Mean, p.Mb.CI95)
	}
	return nil
}

// ContentionPoint is one row of the registration-contention study.
type ContentionPoint struct {
	AckWindow int // 0 = the paper's ideal collision-free registration
	N         int
	Mb        stats.Summary
	FracIdeal float64 // mean fraction of the ideal-registration throughput
}

// ContentionTable aggregates the sweep.
type ContentionTable struct {
	Points []ContentionPoint
}

// Contention measures how sensitive Online_Appro is to Ack collisions
// during registration (internal/mac): the paper assumes a perfect
// registration phase; this sweeps the CSMA backoff window and reports the
// recovered fraction of ideal throughput.
func Contention(cfg Config) (*ContentionTable, error) {
	cfg = cfg.withDefaults()
	sizes := cfg.Sizes
	if len(sizes) == 6 && sizes[0] == 100 {
		sizes = []int{100, 300, 600}
	}
	tbl := &ContentionTable{}
	for _, n := range sizes {
		// Ideal baseline per trial.
		ideal := make([]float64, cfg.Trials)
		insts := make([]*core.Instance, cfg.Trials)
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := seedFor(cfg.Seed, n, trial)
			dep, err := network.Generate(network.Params{
				N: n, PathLength: cfg.PathLength, MaxOffset: cfg.MaxOffset, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			h, err := energy.NewSolar(cfg.PanelAreaMM2, cfg.Condition, 1.0)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(seed))
			if err := dep.AssignSteadyStateBudgets(h, cfg.Accrual*cfg.PathLength/5, cfg.Jitter, rng); err != nil {
				return nil, err
			}
			inst, err := core.BuildInstance(dep, radio.Paper2013(), 5, 1)
			if err != nil {
				return nil, err
			}
			insts[trial] = inst
			res, err := online.Run(inst, &online.Appro{})
			if err != nil {
				return nil, err
			}
			ideal[trial] = res.Data
		}
		for _, w := range []int{0, 4, 8, 16, 64} {
			var mbs, fracs []float64
			for trial := 0; trial < cfg.Trials; trial++ {
				var data float64
				if w == 0 {
					data = ideal[trial]
				} else {
					res, err := online.RunOpts(insts[trial], &online.Appro{},
						online.Options{AckWindow: w, Seed: seedFor(cfg.Seed, n, trial)})
					if err != nil {
						return nil, err
					}
					data = res.Data
				}
				mbs = append(mbs, core.ThroughputMb(data))
				if ideal[trial] > 0 {
					fracs = append(fracs, data/ideal[trial])
				}
			}
			sum, err := stats.Summarize(mbs)
			if err != nil {
				return nil, err
			}
			tbl.Points = append(tbl.Points, ContentionPoint{
				AckWindow: w, N: n, Mb: sum, FracIdeal: stats.Mean(fracs),
			})
		}
	}
	return tbl, nil
}

// WriteCSV emits the contention table.
func (t *ContentionTable) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"ack_window", "n", "throughput_mb_mean", "throughput_mb_ci95", "fraction_of_ideal"}); err != nil {
		return err
	}
	for _, p := range t.Points {
		if err := cw.Write([]string{
			strconv.Itoa(p.AckWindow), strconv.Itoa(p.N),
			fmt.Sprintf("%.4f", p.Mb.Mean), fmt.Sprintf("%.4f", p.Mb.CI95),
			fmt.Sprintf("%.4f", p.FracIdeal),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Render prints the contention table.
func (t *ContentionTable) Render(w io.Writer) error {
	fmt.Fprintln(w, "== contention: Ack-collision sensitivity of Online_Appro (CSMA window sweep; 0 = ideal) ==")
	fmt.Fprintf(w, "%10s %6s %14s %12s\n", "ack_window", "n", "Mb/tour", "of ideal")
	for _, p := range t.Points {
		fmt.Fprintf(w, "%10d %6d %8.2f ±%4.2f %11.1f%%\n", p.AckWindow, p.N, p.Mb.Mean, p.Mb.CI95, 100*p.FracIdeal)
	}
	return nil
}

// LatencyPoint is one row of the throughput/latency trade-off study.
type LatencyPoint struct {
	Speed        float64
	TourMin      float64 // tour duration, minutes
	Mb           stats.Summary
	MeanDelayMin float64 // mean delivery delay of the traffic workload, minutes
	P95DelayMin  float64
	DeliveredPct float64 // fraction of generated detections delivered
}

// LatencyTable aggregates the sweep.
type LatencyTable struct {
	Points []LatencyPoint
}

// Latency quantifies §VII.C's qualitative trade-off — "a higher speed
// leads to a shorter delay on data delivery, [but] a less amount of data
// collected per tour" — by replaying the traffic-surveillance workload
// against Online_Appro tours at each sink speed and measuring actual
// sensed-to-delivered delays.
func Latency(cfg Config) (*LatencyTable, error) {
	cfg = cfg.withDefaults()
	const n = 200
	tp := traffic.Params{
		ArrivalRate: 0.05, MeanSpeed: 25, SpeedStdDev: 4,
		DetectRange: 150, BitsPerDetection: 20e3,
	}
	tbl := &LatencyTable{}
	for _, speed := range []float64{2, 5, 10, 20, 30} {
		var mbs []float64
		var delaySum, p95Sum, genSum, delSum float64
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := seedFor(cfg.Seed, int(speed), trial)
			dep, err := network.Generate(network.Params{
				N: n, PathLength: cfg.PathLength, MaxOffset: cfg.MaxOffset, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			h, err := energy.NewSolar(cfg.PanelAreaMM2, cfg.Condition, 1.0)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(seed))
			tourDur := cfg.PathLength / speed
			if err := dep.AssignSteadyStateBudgets(h, cfg.Accrual*tourDur, cfg.Jitter, rng); err != nil {
				return nil, err
			}
			inst, err := core.BuildInstance(dep, radio.Paper2013(), speed, 1)
			if err != nil {
				return nil, err
			}
			res, err := online.Run(inst, &online.Appro{})
			if err != nil {
				return nil, err
			}
			tpTrial := tp
			tpTrial.Seed = seed
			lat, err := traffic.DeliveryLatency(dep, tpTrial, inst, res.Alloc, -3600, 0)
			if err != nil {
				return nil, err
			}
			mbs = append(mbs, core.ThroughputMb(res.Data))
			delaySum += lat.MeanDelay
			p95Sum += lat.P95Delay
			genSum += float64(lat.Detections)
			delSum += float64(lat.Delivered)
		}
		sum, err := stats.Summarize(mbs)
		if err != nil {
			return nil, err
		}
		pt := LatencyPoint{
			Speed:        speed,
			TourMin:      cfg.PathLength / speed / 60,
			Mb:           sum,
			MeanDelayMin: delaySum / float64(cfg.Trials) / 60,
			P95DelayMin:  p95Sum / float64(cfg.Trials) / 60,
		}
		if genSum > 0 {
			pt.DeliveredPct = 100 * delSum / genSum
		}
		tbl.Points = append(tbl.Points, pt)
	}
	return tbl, nil
}

// WriteCSV emits the latency table.
func (t *LatencyTable) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"speed", "tour_min", "throughput_mb_mean",
		"mean_delay_min", "p95_delay_min", "delivered_pct"}); err != nil {
		return err
	}
	for _, p := range t.Points {
		if err := cw.Write([]string{
			fmt.Sprintf("%g", p.Speed), fmt.Sprintf("%.1f", p.TourMin),
			fmt.Sprintf("%.4f", p.Mb.Mean),
			fmt.Sprintf("%.2f", p.MeanDelayMin), fmt.Sprintf("%.2f", p.P95DelayMin),
			fmt.Sprintf("%.1f", p.DeliveredPct),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Render prints the latency table.
func (t *LatencyTable) Render(w io.Writer) error {
	fmt.Fprintln(w, "== latency: throughput vs delivery delay across sink speeds (§VII.C trade-off) ==")
	fmt.Fprintf(w, "%8s %10s %14s %12s %12s %11s\n",
		"speed", "tour(min)", "Mb/tour", "delay(min)", "p95(min)", "delivered")
	for _, p := range t.Points {
		fmt.Fprintf(w, "%8g %10.1f %8.2f ±%4.2f %12.1f %12.1f %10.1f%%\n",
			p.Speed, p.TourMin, p.Mb.Mean, p.Mb.CI95, p.MeanDelayMin, p.P95DelayMin, p.DeliveredPct)
	}
	return nil
}
