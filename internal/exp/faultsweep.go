package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strconv"

	"mobisink/internal/core"
	"mobisink/internal/energy"
	"mobisink/internal/fault"
	"mobisink/internal/network"
	"mobisink/internal/online"
	"mobisink/internal/radio"
	"mobisink/internal/stats"
)

// FaultPoint is one row of the fault-tolerance study: Online_Appro under
// a uniform message drop rate, with and without the recovery machinery.
type FaultPoint struct {
	Rate      float64
	N         int
	Mb        stats.Summary // with retransmission + schedule repair
	FracIdeal float64       // mean fraction of the fault-free throughput
	FracBare  float64       // same drop rate, recovery disabled (MaxRetries=0)
	Repaired  float64       // mean slots reassigned away from silent sensors
	Lost      float64       // mean slots gone idle despite repair attempts
	Clamps    float64       // mean stale-budget clamps (feasibility guard)
	Retx      float64       // mean extra Probe broadcasts (retransmission rounds)
	RepairTx  float64       // mean unicast schedule-repair messages sent
}

// FaultTable aggregates the sweep.
type FaultTable struct {
	Points []FaultPoint
}

// FaultSweep measures how gracefully Online_Appro degrades when every
// protocol message (Probe, Ack, Schedule, Finish) is dropped with the
// same Bernoulli rate, plus a sprinkling of mid-tour sensor crashes. Each
// rate is run twice per trial: with the self-healing machinery (3
// retransmission rounds, schedule repair, budget clamps) and bare
// (MaxRetries = 0), so the table shows both the damage and the recovery.
func FaultSweep(cfg Config) (*FaultTable, error) {
	cfg = cfg.withDefaults()
	rates := cfg.FaultRates
	if len(rates) == 0 {
		rates = []float64{0, 0.05, 0.2, 0.5}
	}
	const n = 300
	tbl := &FaultTable{}

	// Fault-free baseline per trial, instance reused across rates.
	ideal := make([]float64, cfg.Trials)
	insts := make([]*core.Instance, cfg.Trials)
	for trial := 0; trial < cfg.Trials; trial++ {
		seed := seedFor(cfg.Seed, n, trial)
		dep, err := network.Generate(network.Params{
			N: n, PathLength: cfg.PathLength, MaxOffset: cfg.MaxOffset, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		h, err := energy.NewSolar(cfg.PanelAreaMM2, cfg.Condition, 1.0)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed))
		if err := dep.AssignSteadyStateBudgets(h, cfg.Accrual*cfg.PathLength/5, cfg.Jitter, rng); err != nil {
			return nil, err
		}
		inst, err := core.BuildInstance(dep, radio.Paper2013(), 5, 1)
		if err != nil {
			return nil, err
		}
		insts[trial] = inst
		res, err := online.Run(inst, &online.Appro{})
		if err != nil {
			return nil, err
		}
		ideal[trial] = res.Data
	}

	for _, rate := range rates {
		var mbs, fracs, bares []float64
		var repaired, lost, clamps, retx, repairTx float64
		for trial := 0; trial < cfg.Trials; trial++ {
			inst := insts[trial]
			seed := seedFor(cfg.Seed, n, trial)
			if rate == 0 {
				mbs = append(mbs, core.ThroughputMb(ideal[trial]))
				if ideal[trial] > 0 {
					fracs = append(fracs, 1)
					bares = append(bares, 1)
				}
				continue
			}
			plan := faultPlan(rate, seed, inst.T, len(inst.Sensors))
			res, err := online.RunOpts(inst, &online.Appro{},
				online.Options{Faults: &plan, Seed: seed})
			if err != nil {
				return nil, err
			}
			if err := res.CheckLemma1(); err != nil {
				return nil, fmt.Errorf("exp: lemma 1 violated at rate %g: %w", rate, err)
			}
			bare := plan
			bare.MaxRetries = 0
			bres, err := online.RunOpts(inst, &online.Appro{},
				online.Options{Faults: &bare, Seed: seed})
			if err != nil {
				return nil, err
			}
			mbs = append(mbs, core.ThroughputMb(res.Data))
			if ideal[trial] > 0 {
				fracs = append(fracs, res.Data/ideal[trial])
				bares = append(bares, bres.Data/ideal[trial])
			}
			repaired += float64(res.Fault.RepairedSlots)
			lost += float64(res.Fault.LostSlots)
			clamps += float64(res.Fault.BudgetClamps)
			retx += float64(res.Messages.Retransmits)
			repairTx += float64(res.Messages.RepairUnicasts)
		}
		sum, err := stats.Summarize(mbs)
		if err != nil {
			return nil, err
		}
		tbl.Points = append(tbl.Points, FaultPoint{
			Rate: rate, N: n, Mb: sum,
			FracIdeal: stats.Mean(fracs),
			FracBare:  stats.Mean(bares),
			Repaired:  repaired / float64(cfg.Trials),
			Lost:      lost / float64(cfg.Trials),
			Clamps:    clamps / float64(cfg.Trials),
			Retx:      retx / float64(cfg.Trials),
			RepairTx:  repairTx / float64(cfg.Trials),
		})
	}
	return tbl, nil
}

// faultPlan builds the sweep's scenario: a uniform drop rate on all four
// message types, three retransmission rounds, and every 25th sensor down
// for the middle third of the tour.
func faultPlan(rate float64, seed int64, slots, sensors int) fault.Plan {
	p := fault.Plan{
		Seed:         seed,
		DropProbe:    rate,
		DropAck:      rate,
		DropSchedule: rate,
		DropFinish:   rate,
		MaxRetries:   3,
	}
	for i := 0; i < sensors; i += 25 {
		p.Crashes = append(p.Crashes, fault.Crash{Sensor: i, From: slots / 3, To: 2 * slots / 3})
	}
	return p
}

// WriteCSV emits the fault table.
func (t *FaultTable) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"rate", "n", "throughput_mb_mean", "throughput_mb_ci95",
		"fraction_of_ideal", "fraction_no_recovery", "repaired_slots", "lost_slots", "budget_clamps",
		"probe_retransmits", "repair_unicasts"}); err != nil {
		return err
	}
	for _, p := range t.Points {
		if err := cw.Write([]string{
			fmt.Sprintf("%g", p.Rate), strconv.Itoa(p.N),
			fmt.Sprintf("%.4f", p.Mb.Mean), fmt.Sprintf("%.4f", p.Mb.CI95),
			fmt.Sprintf("%.4f", p.FracIdeal), fmt.Sprintf("%.4f", p.FracBare),
			fmt.Sprintf("%.1f", p.Repaired), fmt.Sprintf("%.1f", p.Lost),
			fmt.Sprintf("%.1f", p.Clamps),
			fmt.Sprintf("%.1f", p.Retx), fmt.Sprintf("%.1f", p.RepairTx),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Render prints the fault table.
func (t *FaultTable) Render(w io.Writer) error {
	fmt.Fprintln(w, "== faults: Online_Appro under message loss and sensor crashes (n=300) ==")
	fmt.Fprintf(w, "%6s %6s %14s %10s %10s %9s %6s %7s %6s %8s\n",
		"rate", "n", "Mb/tour", "recovered", "bare", "repaired", "lost", "clamps", "retx", "repairTx")
	for _, p := range t.Points {
		fmt.Fprintf(w, "%6g %6d %8.2f ±%4.2f %9.1f%% %9.1f%% %9.1f %6.1f %7.1f %6.1f %8.1f\n",
			p.Rate, p.N, p.Mb.Mean, p.Mb.CI95, 100*p.FracIdeal, 100*p.FracBare,
			p.Repaired, p.Lost, p.Clamps, p.Retx, p.RepairTx)
	}
	return nil
}
