package exp

import (
	"time"

	"mobisink/internal/metrics"
)

// Package-level instrumentation on the process-wide registry: every
// algorithm run during an experiment feeds the solver-runtime and
// per-tour collected-data histograms, so `cmd/mobisink -stats` (and
// an allocserver sharing metrics.Default) can report solver behavior
// across a whole campaign.
var (
	solverRuntime = metrics.Default().HistogramVec("exp_solver_runtime_seconds",
		"Wall time of one algorithm run on one tour instance.",
		metrics.ExpBuckets(1e-4, 4, 10), "algorithm")
	tourCollected = metrics.Default().HistogramVec("exp_tour_collected_mb",
		"Data collected in one tour, megabits.",
		metrics.ExpBuckets(0.25, 2, 12), "algorithm")
	trialsRun = metrics.Default().Counter("exp_trials_total",
		"Experiment trials completed (one topology, all cell algorithms).")
	solverErrors = metrics.Default().CounterVec("exp_solver_errors_total",
		"Failed algorithm runs, by algorithm.", "algorithm")
)

// observeRun records one algorithm execution into the histograms.
func observeRun(alg string, bits float64, elapsed time.Duration) {
	solverRuntime.With(alg).Observe(elapsed.Seconds())
	tourCollected.With(alg).Observe(bits / 1e6)
}
