// Package exp defines the paper's evaluation experiments (§VII): for every
// figure it generates the random topologies, runs the algorithms over many
// trials in parallel, and aggregates network throughput per data point.
//
// Experiment index:
//
//	Fig2  — Offline_Appro vs Online_Appro; n ∈ {100..600},
//	        (r_s, τ) ∈ {(5,1), (10,2), (30,4)}; multi-rate radio.
//	Fig3  — special case (fixed 300 mW): Offline_MaxMatch, Online_MaxMatch,
//	        Offline_Appro, Online_Appro; r_s ∈ {5,10,30}, τ = 1.
//	Fig4a — Online_MaxMatch; τ ∈ {1,2,4,8,16}, r_s = 5 (fixed power).
//	Fig4b — Online_Appro; same sweep (multi-rate).
package exp

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"mobisink/internal/core"
	"mobisink/internal/energy"
	"mobisink/internal/network"
	"mobisink/internal/parallel"
	"mobisink/internal/radio"
	"mobisink/internal/solve"
	"mobisink/internal/stats"
)

// Config controls an experiment run.
type Config struct {
	// Sizes are the network sizes to sweep; default {100..600 step 100}.
	Sizes []int
	// Trials is the number of random topologies per point; default 50
	// (the paper's setting).
	Trials int
	// Seed is the base RNG seed; trial t of size n uses seed
	// Seed + hash(n, t), so points are independent yet reproducible.
	Seed int64
	// Condition selects the solar calibration; default Sunny.
	Condition energy.Condition
	// Jitter is the per-sensor budget heterogeneity (budgets scaled by a
	// uniform factor in [1−Jitter, 1], standing in for the variability of
	// the real harvesting traces); default 0.5.
	Jitter float64
	// Workers bounds trial parallelism; default GOMAXPROCS.
	Workers int
	// FixedPower is the special-case transmission power; default 0.3 W.
	FixedPower float64
	// PathLength and MaxOffset override the topology defaults
	// (10 000 m / 180 m) when positive.
	PathLength, MaxOffset float64
	// PanelAreaMM2 sets the solar panel area feeding the per-tour budgets;
	// default is the paper's 10×10 mm panel (≈1 mW average harvest under
	// the sunny calibration).
	PanelAreaMM2 float64
	// FaultRates are the message drop rates swept by the fault-tolerance
	// experiment; default {0, 0.05, 0.2, 0.5}.
	FaultRates []float64
	// Accrual scales per-tour budgets to model stored-energy carryover:
	// budget = avgHarvest × tourDuration × Accrual. The paper's recurrence
	// P_j = min(P_{j-1}+Q−O, B) lets unspent harvest accumulate across
	// tours, and a sensor is scheduled in only a fraction of tours; with
	// the paper's nominal panel a strict one-tour budget (~0.33 J at
	// 30 m/s, τ=4 s) cannot afford a single 0.68 J transmission slot,
	// contradicting the paper's reported nonzero throughput in that
	// setting. Default 3 — the smallest integer carryover that keeps every
	// paper setting feasible while budgets stay binding. Budgets remain
	// proportional to tour duration, preserving the figures' speed
	// scaling.
	Accrual float64
}

func (c Config) withDefaults() Config {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{100, 200, 300, 400, 500, 600}
	}
	if c.Trials <= 0 {
		c.Trials = 50
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	} else if c.Jitter == 0 {
		c.Jitter = 0.5
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.FixedPower <= 0 {
		c.FixedPower = 0.3
	}
	if c.PathLength <= 0 {
		c.PathLength = 10000
	}
	if c.MaxOffset <= 0 {
		c.MaxOffset = 180
	}
	if c.PanelAreaMM2 <= 0 {
		c.PanelAreaMM2 = energy.PaperPanelAreaMM2
	}
	if c.Accrual <= 0 {
		c.Accrual = 3
	}
	return c
}

// Setting is one kinematic configuration of the sink.
type Setting struct {
	Speed float64 // r_s, m/s
	Tau   float64 // τ, s
}

// String formats the setting as it appears in figure legends.
func (s Setting) String() string {
	return fmt.Sprintf("rs=%gm/s,tau=%gs", s.Speed, s.Tau)
}

// Algorithm names (matching the paper). These are the canonical names of
// the internal/solve registry, which dispatches every run.
const (
	AlgOfflineAppro    = "Offline_Appro"
	AlgOnlineAppro     = "Online_Appro"
	AlgOfflineMaxMatch = "Offline_MaxMatch"
	AlgOnlineMaxMatch  = "Online_MaxMatch"
	AlgOnlineGreedy    = "Online_Greedy"
)

// runAlgorithm dispatches through the solver registry; returns collected
// bits. Successful runs feed the solver-runtime and collected-data
// histograms on the default metrics registry, failed runs the
// per-algorithm error counter; all labels derive from Solver.Name(), so
// metric cardinality is bounded by the registry.
func runAlgorithm(name string, inst *core.Instance) (float64, error) {
	s, err := solve.New(name, solve.Options{})
	if err != nil {
		return 0, fmt.Errorf("exp: unknown algorithm %q", name)
	}
	start := time.Now()
	alloc, err := s.Solve(context.Background(), inst)
	if err != nil {
		solverErrors.With(s.Name()).Inc()
		return 0, err
	}
	observeRun(s.Name(), alloc.Data, time.Since(start))
	return alloc.Data, nil
}

// Point is one aggregated data point of a figure.
type Point struct {
	Setting   string
	N         int
	Algorithm string
	Mb        stats.Summary // throughput per tour, megabits
	FracUB    float64       // mean fraction of the instance upper bound
}

// Table is one reproduced figure.
type Table struct {
	Name        string
	Description string
	Points      []Point
}

// cell collects the per-trial work shared by all algorithms of one
// (setting, n) cell: the trial topologies and instances.
type cell struct {
	setting    Setting
	n          int
	fixedPower bool // build the fixed-power radio model
	algorithms []string
}

// trialResult carries one trial's throughput per algorithm plus the bound.
type trialResult struct {
	bits map[string]float64
	ub   float64
	err  error
}

// seedFor decorrelates trials across cells deterministically.
func seedFor(base int64, n, trial int) int64 {
	h := uint64(base) ^ uint64(n)*0x9E3779B97F4A7C15 ^ uint64(trial)*0xBF58476D1CE4E5B9
	h ^= h >> 31
	return int64(h & 0x7FFFFFFFFFFFFFFF)
}

// runCell executes all trials of one cell: every trial topology is built
// with bounded parallelism, then each algorithm sweeps the whole cell
// through solve.Batch — the flat engine compiles each instance once and
// the work-stealing pool keeps workers busy across skewed instance sizes.
func runCell(cfg Config, c cell) ([]Point, error) {
	insts := make([]*core.Instance, cfg.Trials)
	ubs := make([]float64, cfg.Trials)
	if err := parallel.ForEach(cfg.Trials, cfg.Workers, func(t int) error {
		inst, err := buildTrial(cfg, c, t)
		if err != nil {
			return fmt.Errorf("exp: building n=%d trial %d: %w", c.n, t, err)
		}
		insts[t] = inst
		ubs[t] = inst.UpperBound()
		return nil
	}); err != nil {
		return nil, err
	}

	perAlg := make(map[string][]float64, len(c.algorithms))
	perAlgFrac := make(map[string][]float64, len(c.algorithms))
	for _, alg := range c.algorithms {
		items, err := solve.Batch(context.Background(), alg, insts, solve.Options{}, cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("exp: unknown algorithm %q", alg)
		}
		for t, item := range items {
			if item.Err != nil {
				solverErrors.With(alg).Inc()
				return nil, fmt.Errorf("exp: %s on n=%d trial %d: %w", alg, c.n, t, item.Err)
			}
			observeRun(alg, item.Alloc.Data, item.Elapsed)
			perAlg[alg] = append(perAlg[alg], core.ThroughputMb(item.Alloc.Data))
			if ubs[t] > 0 {
				perAlgFrac[alg] = append(perAlgFrac[alg], item.Alloc.Data/ubs[t])
			}
		}
	}
	for t := 0; t < cfg.Trials; t++ {
		trialsRun.Inc()
	}
	pts := make([]Point, 0, len(c.algorithms))
	for _, alg := range c.algorithms {
		sum, err := stats.Summarize(perAlg[alg])
		if err != nil {
			return nil, fmt.Errorf("exp: no results for %s: %w", alg, err)
		}
		pts = append(pts, Point{
			Setting:   c.setting.String(),
			N:         c.n,
			Algorithm: alg,
			Mb:        sum,
			FracUB:    stats.Mean(perAlgFrac[alg]),
		})
	}
	return pts, nil
}

// buildTrial constructs one trial's topology and instance (the
// solver-independent half of a trial).
func buildTrial(cfg Config, c cell, trial int) (*core.Instance, error) {
	seed := seedFor(cfg.Seed, c.n, trial)
	dep, err := network.Generate(network.Params{
		N: c.n, PathLength: cfg.PathLength, MaxOffset: cfg.MaxOffset, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	h, err := energy.NewSolar(cfg.PanelAreaMM2, cfg.Condition, 1.0)
	if err != nil {
		return nil, err
	}
	tourDur := cfg.PathLength / c.setting.Speed
	rng := rand.New(rand.NewSource(seed ^ 0x5DEECE66D))
	if err := dep.AssignSteadyStateBudgets(h, tourDur*cfg.Accrual, cfg.Jitter, rng); err != nil {
		return nil, err
	}
	var model radio.Model = radio.Paper2013()
	if c.fixedPower {
		model, err = radio.NewFixedPower(radio.Paper2013(), cfg.FixedPower)
		if err != nil {
			return nil, err
		}
	}
	return core.BuildInstance(dep, model, c.setting.Speed, c.setting.Tau)
}

// runTrial builds one topology and runs every algorithm of the cell on it
// (the fault sweeps use this un-batched path: their per-trial fault plans
// cannot share a compiled instance).
func runTrial(cfg Config, c cell, trial int) trialResult {
	inst, err := buildTrial(cfg, c, trial)
	if err != nil {
		return trialResult{err: err}
	}
	res := trialResult{bits: make(map[string]float64, len(c.algorithms)), ub: inst.UpperBound()}
	for _, alg := range c.algorithms {
		bits, err := runAlgorithm(alg, inst)
		if err != nil {
			return trialResult{err: fmt.Errorf("exp: %s on n=%d trial %d: %w", alg, c.n, trial, err)}
		}
		res.bits[alg] = bits
	}
	trialsRun.Inc()
	return res
}

// runFigure sweeps all cells of a figure.
func runFigure(cfg Config, name, desc string, cells []cell) (*Table, error) {
	cfg = cfg.withDefaults()
	tbl := &Table{Name: name, Description: desc}
	for _, c := range cells {
		pts, err := runCell(cfg, c)
		if err != nil {
			return nil, fmt.Errorf("exp: %s (%s, n=%d): %w", name, c.setting, c.n, err)
		}
		tbl.Points = append(tbl.Points, pts...)
	}
	if len(tbl.Points) == 0 {
		return nil, errors.New("exp: empty figure")
	}
	return tbl, nil
}

// Fig2 reproduces Figure 2: Offline_Appro vs Online_Appro across network
// size and sink speed/slot settings.
func Fig2(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	settings := []Setting{{5, 1}, {10, 2}, {30, 4}}
	var cells []cell
	for _, s := range settings {
		for _, n := range cfg.Sizes {
			cells = append(cells, cell{
				setting:    s,
				n:          n,
				algorithms: []string{AlgOfflineAppro, AlgOnlineAppro},
			})
		}
	}
	return runFigure(cfg, "fig2",
		"Network throughput: Offline_Appro vs Online_Appro (multi-rate)", cells)
}

// Fig3 reproduces Figure 3: the special case with one fixed transmission
// power, comparing the matching algorithms with the GAP algorithms.
func Fig3(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	speeds := []float64{5, 10, 30}
	var cells []cell
	for _, sp := range speeds {
		for _, n := range cfg.Sizes {
			cells = append(cells, cell{
				setting:    Setting{sp, 1},
				n:          n,
				fixedPower: true,
				algorithms: []string{AlgOfflineMaxMatch, AlgOnlineMaxMatch, AlgOfflineAppro, AlgOnlineAppro},
			})
		}
	}
	return runFigure(cfg, "fig3",
		"Special case (fixed 300 mW): matching vs GAP algorithms", cells)
}

// Fig4a reproduces Figure 4(a): Online_MaxMatch across slot durations.
func Fig4a(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	var cells []cell
	for _, tau := range []float64{1, 2, 4, 8, 16} {
		for _, n := range cfg.Sizes {
			cells = append(cells, cell{
				setting:    Setting{5, tau},
				n:          n,
				fixedPower: true,
				algorithms: []string{AlgOnlineMaxMatch},
			})
		}
	}
	return runFigure(cfg, "fig4a",
		"Impact of slot duration on Online_MaxMatch (r_s = 5 m/s)", cells)
}

// Fig4b reproduces Figure 4(b): Online_Appro across slot durations.
func Fig4b(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	var cells []cell
	for _, tau := range []float64{1, 2, 4, 8, 16} {
		for _, n := range cfg.Sizes {
			cells = append(cells, cell{
				setting:    Setting{5, tau},
				n:          n,
				algorithms: []string{AlgOnlineAppro},
			})
		}
	}
	return runFigure(cfg, "fig4b",
		"Impact of slot duration on Online_Appro (r_s = 5 m/s)", cells)
}

// Figures maps experiment ids to runners for the CLI.
var Figures = map[string]func(Config) (*Table, error){
	"2":  Fig2,
	"3":  Fig3,
	"4a": Fig4a,
	"4b": Fig4b,
}
