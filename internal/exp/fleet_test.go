package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestFleetSweep(t *testing.T) {
	cfg := Config{Sizes: []int{40}, Trials: 2, Seed: 9}
	tbl, err := FleetSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Points) != 6 { // 3 fleet sizes × 1 size × 2 algorithms
		t.Fatalf("points = %d", len(tbl.Points))
	}
	ks := map[int]bool{}
	for _, p := range tbl.Points {
		ks[p.K] = true
		if p.Mb.Mean <= 0 {
			t.Errorf("K=%d %s: empty throughput", p.K, p.Algorithm)
		}
		if p.FracUB < 0 || p.FracUB > 1+1e-9 {
			t.Errorf("K=%d %s: fraction of UB %v outside [0,1]", p.K, p.Algorithm, p.FracUB)
		}
	}
	if !ks[1] || !ks[2] || !ks[4] {
		t.Fatalf("fleet sizes covered: %v, want {1,2,4}", ks)
	}
	var csvBuf, renderBuf bytes.Buffer
	if err := tbl.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csvBuf.String(), "k,n,algorithm") {
		t.Errorf("csv header: %q", csvBuf.String()[:20])
	}
	if err := tbl.Render(&renderBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(renderBuf.String(), "K-sink sweep") {
		t.Error("render missing title")
	}
}
