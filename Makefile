# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet bench cover experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -cover ./...

# Reproduce every figure/table of the paper (≈10-15 min single-core).
experiments:
	$(GO) run ./cmd/mobisink -fig all -trials 50 -csv results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/specialcase
	$(GO) run ./examples/fairness
	$(GO) run ./examples/energyplanning
	$(GO) run ./examples/curvedroad
	$(GO) run ./examples/trafficload
	$(GO) run ./examples/highway

clean:
	rm -f test_output.txt bench_output.txt
