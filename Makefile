# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-metrics test-fault test-wire test-recovery test-race vet check bench bench-all bench-compare bench-compare-short bench-wire bench-wire-compare cover cover-all experiments examples clean fuzz-wire fuzz-gap fuzz-fleet fuzz-wal

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Hygiene gate: formatting, vet, and the solver engine under the race
# detector (the parallel component decomposition is the main concurrent
# hot path). Part of the default `test` target.
check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) test -race ./internal/solve ./internal/gap

test: check test-metrics test-fault test-wire test-recovery cover bench-compare-short
	$(GO) test ./...

# Wire-transport gate: formatting and vet on the framing/server/client/
# chaos-proxy/loadgen layer, then the whole loopback end-to-end suite
# (including the byte-parity keystone and the chaos tours) under the
# race detector. Part of the default `test` target.
test-wire:
	@out=$$(gofmt -l internal/wire cmd/sinkd cmd/loadgen); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./internal/wire ./cmd/sinkd ./cmd/loadgen
	$(GO) test -race ./internal/wire ./cmd/sinkd ./cmd/loadgen

# Recovery gate: formatting and vet on the session/WAL/daemon layer,
# then the resumption, heartbeat, churn-chaos, and crash-restart suites
# under the race detector (session state and the journal ledger are
# touched from handler goroutines and the tour loop concurrently).
# Part of the default `test` target.
test-recovery:
	@out=$$(gofmt -l internal/wire internal/wal cmd/sinkd); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./internal/wire ./internal/wal ./cmd/sinkd
	$(GO) test -race ./internal/wire ./internal/wal ./cmd/sinkd

# Short fuzz pass over the strict frame decoder (no input may panic,
# over-read, or break round-trip symmetry).
fuzz-wire:
	$(GO) test -run '^$$' -fuzz FuzzFrameDecode -fuzztime 30s ./internal/wire

# Short fuzz pass over the journal replayer: arbitrary byte streams —
# torn tails, flipped bits, truncated records — must never panic, and a
# clean re-append of whatever Scan salvaged must round-trip.
fuzz-wal:
	$(GO) test -run '^$$' -fuzz FuzzJournalReplay -fuzztime 30s ./internal/wal

# Short fuzz pass over the incremental delta re-solve: random patch
# programs applied to seeded instances; every step must stay bit-identical
# to a cold compile of the patched instance.
fuzz-gap:
	$(GO) test -run '^$$' -fuzz FuzzCompiledApply -fuzztime 30s ./internal/gap

# Short fuzz pass over the fleet instance builder: random (n, K, speed, τ)
# deployments must build joint instances whose sink offsets, windows, and
# absolute-slot bookkeeping stay internally consistent.
fuzz-fleet:
	$(GO) test -run '^$$' -fuzz FuzzFleetBuild -fuzztime 30s ./internal/core

# Robustness gate: the fault-injection layer, the self-healing online
# protocol, and the hardened serving path under the race detector
# (includes the chaos sweep and the end-to-end panic/breaker tests),
# preceded by vet. Part of the default `test` target.
test-fault:
	$(GO) vet ./...
	$(GO) test -race ./internal/fault ./internal/online ./internal/mac ./internal/srv

# Observability gate: the metrics registry and the instrumented HTTP
# server under the race detector (concurrent increments vs. scrapes),
# preceded by vet. Part of the default `test` target.
test-metrics:
	$(GO) vet ./...
	$(GO) test -race ./internal/metrics ./internal/srv

# Tier-1 gate for the concurrent packages (internal/jobs, internal/cache,
# internal/parallel, internal/srv): the full suite under the race
# detector, plus vet. Run before merging anything that touches goroutines,
# channels, or shared state.
test-race:
	$(GO) vet ./...
	$(GO) test -race ./...

# Solver benchmark campaign: every registered solver at N ∈ {50,100,200},
# results captured as BENCH_solvers.json for regression tracking. -count 3
# repeats each row; benchjson keeps the per-metric minimum, which damps
# scheduler noise on shared machines.
bench: bench-wire
	$(GO) test -run '^$$' -bench BenchmarkSolvers -benchmem -count 3 ./internal/solve \
		| $(GO) run ./cmd/benchjson -o BENCH_solvers.json

# Wire fan-out benchmark campaign: serial vs sharded broadcast at
# N ∈ {100,1000,5000} plus the end-to-end tour wall clock, captured as
# BENCH_wire.json. Fixed iteration counts, not -benchtime durations: the
# sharded hand-off is microseconds per op, so a time-based budget would
# explode b.N and drown the run in unmeasured background writes. The
# serial and sharded sub-benchmarks get separate budgets (the serial
# fan-out is ~3 orders of magnitude slower per op), and -count 10 with
# benchjson's per-metric minimum tightens the minima enough for the 10%
# gate to hold on a contended single-core box.
bench-wire:
	{ $(GO) test -run '^$$' -bench BenchmarkBroadcast/Serial -benchtime 100x -benchmem -count 10 -timeout 30m ./internal/wire; \
	  $(GO) test -run '^$$' -bench BenchmarkBroadcast/Sharded -benchtime 2000x -benchmem -count 10 -timeout 30m ./internal/wire; \
	  $(GO) test -run '^$$' -bench BenchmarkTourWall -benchtime 1x -count 5 -timeout 30m ./internal/wire; } \
		| $(GO) run ./cmd/benchjson -o BENCH_wire.json

# Perf regression gate for the wire plane: fail on any row regressing
# more than 10% against the committed BENCH_wire.json; a >10%
# improvement refreshes the baseline instead.
bench-wire-compare:
	{ $(GO) test -run '^$$' -bench BenchmarkBroadcast/Serial -benchtime 100x -benchmem -count 10 -timeout 30m ./internal/wire; \
	  $(GO) test -run '^$$' -bench BenchmarkBroadcast/Sharded -benchtime 2000x -benchmem -count 10 -timeout 30m ./internal/wire; \
	  $(GO) test -run '^$$' -bench BenchmarkTourWall -benchtime 1x -count 5 -timeout 30m ./internal/wire; } \
		| $(GO) run ./cmd/benchjson -compare BENCH_wire.json -threshold 10

bench-all:
	$(GO) test -bench=. -benchmem ./...

# Perf regression gate: rerun the solver campaign and fail on any row
# whose ns/op or allocs/op regressed more than 10% against the committed
# BENCH_solvers.json; a >10% improvement refreshes the baseline instead.
bench-compare:
	$(GO) test -run '^$$' -bench BenchmarkSolvers -benchmem -count 3 ./internal/solve \
		| $(GO) run ./cmd/benchjson -compare BENCH_solvers.json -threshold 10

# One-iteration sanity pass of the same pipeline (part of `make test`):
# proves the benchmarks still run and the gate still parses them, without
# timing anything (-threshold 0 is report-only).
bench-compare-short:
	$(GO) test -run '^$$' -bench BenchmarkSolvers -benchtime 1x -benchmem ./internal/solve \
		| $(GO) run ./cmd/benchjson -compare BENCH_solvers.json -threshold 0

# Coverage gate (part of the default `test` target): per-package floors
# on the solving and protocol packages, committed as the baseline below
# measured coverage at the time of writing (gap 94.4, knapsack 93.3,
# online 91.9, wire 83.8, wal 81.8, matching 99.3, core 84.6, loadgen
# 77.2). Raise the floors when coverage rises.
COVER_FLOORS = internal/gap:92 internal/knapsack:91 internal/online:89 internal/wire:81 \
	internal/wal:78 internal/matching:96 internal/core:81 cmd/loadgen:70

cover:
	@fail=0; for spec in $(COVER_FLOORS); do \
		pkg=$${spec%%:*}; floor=$${spec##*:}; \
		pct=$$($(GO) test -cover ./$$pkg | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "cover: no coverage line for $$pkg"; fail=1; continue; fi; \
		if [ "$$(awk -v p="$$pct" -v f="$$floor" 'BEGIN{print (p>=f)?1:0}')" != 1 ]; then \
			echo "cover: $$pkg at $$pct% is below the $$floor% floor"; fail=1; \
		else echo "cover: $$pkg $$pct% (floor $$floor%)"; fi; \
	done; exit $$fail

# Informational coverage sweep over every package (no floors).
cover-all:
	$(GO) test -cover ./...

# Reproduce every figure/table of the paper (≈10-15 min single-core).
experiments:
	$(GO) run ./cmd/mobisink -fig all -trials 50 -csv results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/specialcase
	$(GO) run ./examples/fairness
	$(GO) run ./examples/energyplanning
	$(GO) run ./examples/curvedroad
	$(GO) run ./examples/trafficload
	$(GO) run ./examples/highway
	$(GO) run ./examples/twinsinks

clean:
	rm -f test_output.txt bench_output.txt BENCH_solvers.json
