# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-metrics test-race vet bench cover experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: test-metrics
	$(GO) test ./...

# Observability gate: the metrics registry and the instrumented HTTP
# server under the race detector (concurrent increments vs. scrapes),
# preceded by vet. Part of the default `test` target.
test-metrics:
	$(GO) vet ./...
	$(GO) test -race ./internal/metrics ./internal/srv

# Tier-1 gate for the concurrent packages (internal/jobs, internal/cache,
# internal/parallel, internal/srv): the full suite under the race
# detector, plus vet. Run before merging anything that touches goroutines,
# channels, or shared state.
test-race:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -cover ./...

# Reproduce every figure/table of the paper (≈10-15 min single-core).
experiments:
	$(GO) run ./cmd/mobisink -fig all -trials 50 -csv results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/specialcase
	$(GO) run ./examples/fairness
	$(GO) run ./examples/energyplanning
	$(GO) run ./examples/curvedroad
	$(GO) run ./examples/trafficload
	$(GO) run ./examples/highway

clean:
	rm -f test_output.txt bench_output.txt
