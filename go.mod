module mobisink

go 1.22
