// Command netgen generates random highway sensor topologies as JSON, for
// inspection or for feeding external tooling. Budgets are assigned from the
// calibrated solar model.
//
// Usage:
//
//	netgen -n 300 -seed 7 -speed 5 > topology.json
//	netgen -n 100 -condition cloudy -jitter 0.3 -pretty
//	netgen -n 200 -sinks 2 -sink-speed 8 > fleet.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"mobisink/internal/energy"
	"mobisink/internal/network"
)

func main() {
	var (
		n         = flag.Int("n", 300, "number of sensors")
		seed      = flag.Int64("seed", 1, "RNG seed")
		length    = flag.Float64("length", 10000, "path length, m")
		offset    = flag.Float64("offset", 180, "max sensor offset from the path, m")
		speed     = flag.Float64("speed", 5, "sink speed used to size per-tour budgets, m/s")
		accrual   = flag.Float64("accrual", 3, "stored-energy carryover multiple")
		jitter    = flag.Float64("jitter", 0.5, "per-sensor budget jitter in [0,1)")
		panel     = flag.Float64("panel", energy.PaperPanelAreaMM2, "solar panel area, mm²")
		condition = flag.String("condition", "sunny", "solar condition: sunny or cloudy")
		pretty    = flag.Bool("pretty", false, "indent the JSON output")
		sinks     = flag.Int("sinks", 1, "mobile sink fleet size; >1 splits the highway into equal per-sink segments")
		sinkSpeed = flag.Float64("sink-speed", 0, "per-sink cruise speed written into the sink specs, m/s (0 defers to build time)")
	)
	flag.Parse()

	cond := energy.Sunny
	switch *condition {
	case "sunny":
	case "cloudy":
		cond = energy.PartlyCloudy
	default:
		fatalf("unknown condition %q", *condition)
	}
	dep, err := network.Generate(network.Params{
		N: *n, PathLength: *length, MaxOffset: *offset, Seed: *seed,
	})
	if err != nil {
		fatalf("generate: %v", err)
	}
	h, err := energy.NewSolar(*panel, cond, 1.0)
	if err != nil {
		fatalf("solar: %v", err)
	}
	rng := rand.New(rand.NewSource(*seed))
	tourDur := *length / *speed
	if err := dep.AssignSteadyStateBudgets(h, tourDur**accrual, *jitter, rng); err != nil {
		fatalf("budgets: %v", err)
	}
	if *sinks > 1 || *sinkSpeed > 0 {
		var speeds []float64
		if *sinkSpeed > 0 {
			speeds = []float64{*sinkSpeed}
		}
		if err := dep.SplitSinks(*sinks, speeds); err != nil {
			fatalf("sinks: %v", err)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	if *pretty {
		enc.SetIndent("", "  ")
	}
	if err := enc.Encode(dep); err != nil {
		fatalf("encode: %v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "netgen: "+format+"\n", args...)
	os.Exit(1)
}
