// Command expplot renders result CSVs written by `mobisink -csv` back into
// per-setting tables and ASCII charts, so saved experiment data can be
// inspected without re-running the sweep.
//
// Usage:
//
//	expplot results/fig2.csv
//	expplot -setting "rs=5m/s,tau=1s" results/fig3.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"mobisink/internal/exp"
	"mobisink/internal/stats"
)

func main() {
	setting := flag.String("setting", "", "only render this setting")
	flag.Parse()
	if flag.NArg() != 1 {
		fatalf("usage: expplot [-setting S] <results.csv>")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	tbl, err := parse(f, *setting)
	if err != nil {
		fatalf("parse %s: %v", flag.Arg(0), err)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		fatalf("render: %v", err)
	}
}

// parse reads a mobisink results CSV back into an exp.Table.
func parse(r io.Reader, onlySetting string) (*exp.Table, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("no data rows")
	}
	col := map[string]int{}
	for i, name := range rows[0] {
		col[name] = i
	}
	for _, need := range []string{"figure", "setting", "n", "algorithm",
		"throughput_mb_mean", "throughput_mb_stddev", "throughput_mb_ci95", "trials"} {
		if _, ok := col[need]; !ok {
			return nil, fmt.Errorf("missing column %q", need)
		}
	}
	tbl := &exp.Table{Name: rows[1][col["figure"]], Description: "replotted from " + flag.Arg(0)}
	for ln, row := range rows[1:] {
		if onlySetting != "" && row[col["setting"]] != onlySetting {
			continue
		}
		n, err := strconv.Atoi(row[col["n"]])
		if err != nil {
			return nil, fmt.Errorf("row %d: bad n: %v", ln+2, err)
		}
		mean, err := strconv.ParseFloat(row[col["throughput_mb_mean"]], 64)
		if err != nil {
			return nil, fmt.Errorf("row %d: bad mean: %v", ln+2, err)
		}
		sd, _ := strconv.ParseFloat(row[col["throughput_mb_stddev"]], 64)
		ci, _ := strconv.ParseFloat(row[col["throughput_mb_ci95"]], 64)
		trials, _ := strconv.Atoi(row[col["trials"]])
		var frac float64
		if fi, ok := col["fraction_of_upper_bound"]; ok {
			frac, _ = strconv.ParseFloat(row[fi], 64)
		}
		tbl.Points = append(tbl.Points, exp.Point{
			Setting:   row[col["setting"]],
			N:         n,
			Algorithm: row[col["algorithm"]],
			Mb:        stats.Summary{N: trials, Mean: mean, StdDev: sd, CI95: ci},
			FracUB:    frac,
		})
	}
	if len(tbl.Points) == 0 {
		return nil, fmt.Errorf("no rows matched")
	}
	return tbl, nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "expplot: "+format+"\n", args...)
	os.Exit(1)
}
