package main

import (
	"strings"
	"testing"
)

const sampleCSV = `figure,setting,n,algorithm,throughput_mb_mean,throughput_mb_stddev,throughput_mb_ci95,trials,fraction_of_upper_bound
fig2,"rs=5m/s,tau=1s",100,Offline_Appro,30.5920,5.1744,1.4343,50,0.9258
fig2,"rs=5m/s,tau=1s",100,Online_Appro,28.8445,5.0923,1.4115,50,0.8722
fig2,"rs=10m/s,tau=2s",100,Offline_Appro,14.7846,2.6446,0.7330,50,0.8975
`

func TestParse(t *testing.T) {
	tbl, err := parse(strings.NewReader(sampleCSV), "")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Name != "fig2" || len(tbl.Points) != 3 {
		t.Fatalf("parsed %q with %d points", tbl.Name, len(tbl.Points))
	}
	p := tbl.Points[0]
	if p.Setting != "rs=5m/s,tau=1s" || p.N != 100 || p.Algorithm != "Offline_Appro" {
		t.Errorf("point = %+v", p)
	}
	if p.Mb.Mean != 30.592 || p.Mb.N != 50 {
		t.Errorf("summary = %+v", p.Mb)
	}
	if p.FracUB != 0.9258 {
		t.Errorf("fraction = %v", p.FracUB)
	}
}

func TestParseSettingFilter(t *testing.T) {
	tbl, err := parse(strings.NewReader(sampleCSV), "rs=10m/s,tau=2s")
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Points) != 1 || tbl.Points[0].Setting != "rs=10m/s,tau=2s" {
		t.Fatalf("filter failed: %+v", tbl.Points)
	}
	if _, err := parse(strings.NewReader(sampleCSV), "nope"); err == nil {
		t.Error("expected no-rows error")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                      // empty
		"figure,setting\nf,s\n", // missing columns
		"figure,setting,n,algorithm,throughput_mb_mean,throughput_mb_stddev,throughput_mb_ci95,trials\nf,s,notanumber,a,1,1,1,1\n", // bad n
	}
	for i, src := range cases {
		if _, err := parse(strings.NewReader(src), ""); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
