// Command allocserver exposes the slot allocator as a small JSON-over-HTTP
// service, so non-Go planners (e.g. the vehicle's onboard computer) can
// request tour schedules.
//
//	POST /v1/allocate   {"deployment": {...}, "speed": 5, "slot_len": 1,
//	                     "algorithm": "offline_appro", "fixed_power": 0,
//	                     "data_caps": [...]}
//	  → {"algorithm": ..., "data_mb": ..., "slot_owner": [...], ...}
//	GET  /v1/healthz    → ok
//
// The server is stateless; every request carries its full topology.
//
//	allocserver -addr :8080
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"mobisink/internal/srv"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()
	mux := srv.NewMux()
	s := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      120 * time.Second,
	}
	log.Printf("allocserver listening on %s", *addr)
	log.Fatal(s.ListenAndServe())
}
