// Command allocserver exposes the slot allocator as a JSON-over-HTTP
// service, so non-Go planners (e.g. the vehicle's onboard computer) can
// request tour schedules.
//
// Synchronous path (served through an LRU result cache with
// single-flight deduplication — identical concurrent requests compute
// once):
//
//	POST /v1/allocate   {"deployment": {...}, "speed": 5, "slot_len": 1,
//	                     "algorithm": "offline_appro", "fixed_power": 0,
//	                     "data_caps": [...]}
//	  → {"algorithm": ..., "data_mb": ..., "slot_owner": [...], ...}
//
// Asynchronous path (bounded FIFO queue + fixed worker pool; a full
// queue rejects with 429):
//
//	POST   /v1/jobs       {"request": {...}, "timeout_ms": 0}
//	  → 202 {"id": "j1", "state": "queued"}
//	GET    /v1/jobs/{id}  → {"id", "state", "result", "error", ...}
//	DELETE /v1/jobs/{id}  → cancel (a queued job never runs)
//	POST   /v1/batch      {"requests": [...]} → results in input order
//
// Operational endpoints:
//
//	GET /v1/healthz  → 200 {"status":"ok"} when ready; 503 with a JSON
//	                   reason while the circuit breaker is open or the
//	                   job queue is saturated
//	GET /v1/version  → build info + pool/queue/cache sizing
//	GET /metrics     → Prometheus text exposition (queue, cache, HTTP,
//	                   solver histograms)
//
// With -debug-addr a second listener additionally serves net/http/pprof
// under /debug/pprof/ (plus /metrics again), so profiling stays off the
// public port unless explicitly enabled.
//
// The server holds no topology state; every request carries its full
// deployment. On SIGINT/SIGTERM it stops accepting work and drains
// queued and running jobs for up to -drain-timeout.
//
//	allocserver -addr :8080 -workers 8 -queue-depth 128 -cache-entries 512
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mobisink/internal/metrics"
	"mobisink/internal/solve"
	"mobisink/internal/srv"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	listAlgs := flag.Bool("list-algorithms", false, "print the registered algorithm names and exit")
	workers := flag.Int("workers", 0, "solver worker pool size (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 64, "max queued jobs before 429")
	cacheEntries := flag.Int("cache-entries", 256, "LRU result cache size")
	maxBody := flag.Int64("max-body-bytes", 8<<20, "request body cap in bytes (413 beyond)")
	jobTimeout := flag.Duration("job-timeout", 0, "default per-job deadline (0 = none)")
	retryAttempts := flag.Int("retry-attempts", 1, "solver retries after a transient server-side failure")
	retryBackoff := flag.Duration("retry-backoff", 10*time.Millisecond, "initial retry backoff (doubles per attempt)")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive solver failures before the circuit opens")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "open-circuit cooldown before a half-open probe")
	shedFraction := flag.Float64("shed-fraction", 0.8, "queue fill fraction beyond which allocations degrade to the greedy solver (≥1 disables)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "shutdown drain budget")
	debugAddr := flag.String("debug-addr", "", "optional second listener for /debug/pprof/ and /metrics (empty = disabled)")
	flag.Parse()

	if *listAlgs {
		// The API accepts the lowercase spellings of the registry names.
		for _, name := range solve.Names() {
			fmt.Println(strings.ToLower(name))
		}
		return
	}

	// Instrument into the process-wide registry so the exp/sim
	// histograms of any embedded experiment code surface too.
	server := srv.New(srv.Config{
		Workers:      *workers,
		QueueDepth:   *queueDepth,
		CacheEntries: *cacheEntries,
		MaxBodyBytes: *maxBody,
		JobTimeout:   *jobTimeout,
		Metrics:      metrics.Default(),

		RetryAttempts:    *retryAttempts,
		RetryBackoff:     *retryBackoff,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		ShedFraction:     *shedFraction,
	})
	s := &http.Server{
		Addr:              *addr,
		Handler:           server.Mux(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- s.ListenAndServe() }()
	log.Printf("allocserver listening on %s", *addr)

	var debugSrv *http.Server
	if *debugAddr != "" {
		dm := http.NewServeMux()
		dm.HandleFunc("/debug/pprof/", pprof.Index)
		dm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dm.Handle("GET /metrics", server.Metrics().Handler())
		debugSrv = &http.Server{Addr: *debugAddr, Handler: dm,
			ReadHeaderTimeout: 5 * time.Second}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
		log.Printf("debug endpoints (pprof, metrics) on %s", *debugAddr)
	}

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("signal received, draining for up to %v", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Shutdown(drainCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if debugSrv != nil {
		if err := debugSrv.Shutdown(drainCtx); err != nil {
			log.Printf("debug shutdown: %v", err)
		}
	}
	if err := server.Close(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("queue drain: %v", err)
	} else if err != nil {
		log.Printf("drain budget exceeded, canceled remaining jobs")
	}
	log.Printf("allocserver stopped")
}
