// Command mobisink reproduces the paper's evaluation figures.
//
// Usage:
//
//	mobisink -fig 2            # reproduce Figure 2 (50 trials/point)
//	mobisink -fig all -trials 10 -csv results/
//	mobisink -fig 4a -sizes 100,300,600 -seed 7
//
// Output is a per-setting throughput table and ASCII chart on stdout; with
// -csv DIR each figure is also written to DIR/<fig>.csv.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"mobisink/internal/energy"
	"mobisink/internal/exp"
	"mobisink/internal/metrics"
	"mobisink/internal/solve"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "figure to reproduce: 2, 3, 4a, 4b, msgs, gap, accrual, contention, latency, faults, fleet, or all")
		trials    = flag.Int("trials", 50, "random topologies per data point")
		sizesFlag = flag.String("sizes", "", "comma-separated network sizes (default 100..600)")
		seed      = flag.Int64("seed", 1, "base RNG seed")
		csvDir    = flag.String("csv", "", "directory to write per-figure CSV files")
		condition = flag.String("condition", "sunny", "solar condition: sunny or cloudy")
		jitter    = flag.Float64("jitter", 0.5, "per-sensor budget jitter in [0,1)")
		panel     = flag.Float64("panel", 0, "solar panel area in mm² (default: paper 10×10)")
		workers   = flag.Int("workers", 0, "parallel trial workers (default GOMAXPROCS)")
		faults    = flag.String("faults", "", "comma-separated message drop rates for the fault sweep (default 0,0.05,0.2,0.5); implies -fig faults unless -fig is set explicitly")
		stats     = flag.Bool("stats", false, "after the run, dump the metrics snapshot (solver runtimes, per-tour data, event counts)")
		solvers   = flag.Bool("solvers", false, "list the registered solver algorithms and exit")
	)
	flag.Parse()

	if *solvers {
		for _, name := range solve.Names() {
			fmt.Println(name)
		}
		return
	}

	cfg := exp.Config{
		Trials:       *trials,
		Seed:         *seed,
		Jitter:       *jitter,
		Workers:      *workers,
		PanelAreaMM2: *panel,
	}
	switch *condition {
	case "sunny":
		cfg.Condition = energy.Sunny
	case "cloudy":
		cfg.Condition = energy.PartlyCloudy
	default:
		fatalf("unknown condition %q (want sunny or cloudy)", *condition)
	}
	if *faults != "" {
		for _, tok := range strings.Split(*faults, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil || r < 0 || r > 1 {
				fatalf("bad fault rate %q (want a probability in [0,1])", tok)
			}
			cfg.FaultRates = append(cfg.FaultRates, r)
		}
		if !flagSet("fig") {
			*fig = "faults"
		}
	}
	if *sizesFlag != "" {
		for _, tok := range strings.Split(*sizesFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || n <= 0 {
				fatalf("bad size %q", tok)
			}
			cfg.Sizes = append(cfg.Sizes, n)
		}
	}

	ids := []string{*fig}
	if *fig == "all" {
		ids = []string{"2", "3", "4a", "4b", "msgs", "gap"}
	}
	sort.Strings(ids)
	for _, id := range ids {
		start := time.Now()
		var tbl renderable
		var err error
		switch id {
		case "msgs":
			tbl, err = exp.Messages(cfg)
		case "gap":
			tbl, err = exp.OptimalityGap(cfg)
		case "accrual":
			tbl, err = exp.AccrualSensitivity(cfg)
		case "contention":
			tbl, err = exp.Contention(cfg)
		case "latency":
			tbl, err = exp.Latency(cfg)
		case "faults":
			tbl, err = exp.FaultSweep(cfg)
		case "fleet":
			tbl, err = exp.FleetSweep(cfg)
		default:
			run, ok := exp.Figures[id]
			if !ok {
				fatalf("unknown figure %q (want 2, 3, 4a, 4b, msgs, gap, accrual, contention, latency, faults, fleet, all)", id)
			}
			tbl, err = run(cfg)
		}
		if err != nil {
			fatalf("figure %s: %v", id, err)
		}
		if err := tbl.Render(os.Stdout); err != nil {
			fatalf("render: %v", err)
		}
		fmt.Printf("\n[fig %s done in %.1fs]\n\n", id, time.Since(start).Seconds())
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fatalf("mkdir %s: %v", *csvDir, err)
			}
			path := filepath.Join(*csvDir, "fig"+id+".csv")
			f, err := os.Create(path)
			if err != nil {
				fatalf("create %s: %v", path, err)
			}
			if err := tbl.WriteCSV(f); err != nil {
				fatalf("write %s: %v", path, err)
			}
			if err := f.Close(); err != nil {
				fatalf("close %s: %v", path, err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	if *stats {
		dumpStats(os.Stdout)
	}
}

// dumpStats prints the process metrics snapshot (histograms flattened
// to their exposition keys), sorted for stable diffing.
func dumpStats(w io.Writer) {
	snap := metrics.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintln(w, "--- metrics snapshot ---")
	for _, k := range keys {
		fmt.Fprintf(w, "%s %g\n", k, snap[k])
	}
}

// renderable is the common surface of all experiment tables.
type renderable interface {
	Render(io.Writer) error
	WriteCSV(io.Writer) error
}

// flagSet reports whether the named flag was given on the command line.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "mobisink: "+format+"\n", args...)
	os.Exit(1)
}
