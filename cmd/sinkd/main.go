// Command sinkd runs the mobile sink as a network server speaking the
// internal/wire protocol over TCP. Three modes:
//
//	sinkd                      demo: serve on loopback, launch an in-process
//	                           sensor fleet, run one tour, print the outcome
//	                           (with -chaos, interpose the chaos proxy)
//	sinkd -serve               serve and wait for remote sensor clients
//	sinkd -connect host:port   run the sensor fleet against a remote sink
//
// Both sides derive the same instance from the same flags (-n, -seed,
// -path, -offset, -speed, -tau), so a -serve sink and a -connect fleet
// started with identical parameters reproduce the demo tour across
// machines. On a fault-free demo tour the result is checked byte-for-byte
// against the in-process online.Run.
//
// Durability and liveness: -wal journals every interval commit so a
// restarted sink resumes the tour where its predecessor died (the
// -crash-demo mode rehearses exactly that, mid-tour, and still passes
// the parity check); -heartbeat turns on idle keepalives plus derived
// read/write deadlines, and -session-ttl bounds how long a disconnected
// sensor may take to reconnect and resume its session.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"sort"
	"strings"
	"time"

	"mobisink/internal/core"
	"mobisink/internal/energy"
	"mobisink/internal/fault"
	"mobisink/internal/metrics"
	"mobisink/internal/network"
	"mobisink/internal/online"
	"mobisink/internal/radio"
	"mobisink/internal/solve"
	"mobisink/internal/wire"
)

type config struct {
	addr       string
	serve      bool
	connect    string
	algo       string
	n          int
	seed       int64
	pathLen    float64
	offset     float64
	speed      float64
	tau        float64
	chaos      float64
	delay      time.Duration
	retries    int
	window     time.Duration
	stats      bool
	wal        string
	sessionTTL time.Duration
	heartbeat  time.Duration
	crashDemo  bool
	fleet      int
	shards     int
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:0", "listen address (sink modes)")
	flag.BoolVar(&cfg.serve, "serve", false, "serve and wait for remote sensor clients instead of running the built-in fleet")
	flag.StringVar(&cfg.connect, "connect", "", "run as the sensor fleet against the sink at this address")
	flag.StringVar(&cfg.algo, "algo", "appro", "per-interval scheduler: appro, maxmatch, greedy, or sequential")
	flag.IntVar(&cfg.n, "n", 100, "number of sensors")
	flag.Int64Var(&cfg.seed, "seed", 1, "topology and budget seed")
	flag.Float64Var(&cfg.pathLen, "path", 2000, "sink path length, m")
	flag.Float64Var(&cfg.offset, "offset", 40, "max sensor offset from the path, m")
	flag.Float64Var(&cfg.speed, "speed", 5, "sink speed, m/s")
	flag.Float64Var(&cfg.tau, "tau", 1, "slot length, s")
	flag.Float64Var(&cfg.chaos, "chaos", 0, "demo mode: uniform message drop rate injected by the chaos proxy")
	flag.DurationVar(&cfg.delay, "delay", 0, "demo mode: max per-frame chaos delay")
	flag.IntVar(&cfg.retries, "retries", 3, "recovery retransmission rounds (chaos mode)")
	flag.DurationVar(&cfg.window, "window", 100*time.Millisecond, "registration and confirm window (chaos and -serve modes)")
	flag.BoolVar(&cfg.stats, "stats", false, "dump the wire metrics snapshot after the tour")
	flag.StringVar(&cfg.wal, "wal", "", "journal interval commits to this file; an existing journal resumes the tour")
	flag.DurationVar(&cfg.sessionTTL, "session-ttl", time.Minute, "how long a disconnected sensor's session stays resumable")
	flag.DurationVar(&cfg.heartbeat, "heartbeat", 0, "idle keepalive period; also derives read (3×) and write (1×) deadlines on every connection")
	flag.BoolVar(&cfg.crashDemo, "crash-demo", false, "demo mode: kill the sink mid-tour and restart it from the journal, then check parity")
	flag.IntVar(&cfg.fleet, "fleet", 0, "convenience: demo with this many in-process sensors and print the latency percentile snapshot on exit (overrides -n, implies -stats)")
	flag.IntVar(&cfg.shards, "shards", 0, "broadcast writer shards (0 = default 8, negative = legacy serial write loop)")
	flag.Parse()
	if cfg.fleet > 0 {
		cfg.n = cfg.fleet
		cfg.stats = true
	}

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "sinkd:", err)
		os.Exit(1)
	}
}

// buildInstance derives the tour's allocation problem from the shared
// flags, the same construction as the experiment harness.
func buildInstance(cfg config) (*core.Instance, error) {
	dep, err := network.Generate(network.Params{
		N: cfg.n, PathLength: cfg.pathLen, MaxOffset: cfg.offset, Seed: cfg.seed,
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	if err := dep.AssignSteadyStateBudgets(energy.PaperSolar(energy.Sunny), 10000/cfg.speed, 0.2, rng); err != nil {
		return nil, err
	}
	return core.BuildInstance(dep, radio.Paper2013(), cfg.speed, cfg.tau)
}

// connOpts derives per-connection deadlines from the heartbeat period:
// reads tolerate three missed beats, writes get one period.
func connOpts(hb time.Duration) wire.ConnOptions {
	if hb <= 0 {
		return wire.ConnOptions{}
	}
	return wire.ConnOptions{ReadTimeout: 3 * hb, WriteTimeout: hb}
}

func run(cfg config) error {
	inst, err := buildInstance(cfg)
	if err != nil {
		return err
	}
	if cfg.connect != "" {
		return runFleet(cfg, inst)
	}
	sched, err := solve.NewScheduler(cfg.algo, solve.Options{})
	if err != nil {
		return err
	}
	var rec *wire.Recovery
	if cfg.chaos > 0 || cfg.serve {
		// A real network (or a lossy one) needs the timed recovery
		// protocol; only the loopback demo can run the idealized
		// no-timer exchange.
		rec = &wire.Recovery{MaxRetries: cfg.retries, RegWindow: cfg.window, ConfirmWindow: cfg.window}
	}
	walPath := cfg.wal
	if cfg.crashDemo {
		if cfg.serve {
			return fmt.Errorf("-crash-demo needs the built-in fleet (drop -serve)")
		}
		if walPath == "" {
			tmp, err := os.CreateTemp("", "sinkd-crash-*.wal")
			if err != nil {
				return err
			}
			walPath = tmp.Name()
			tmp.Close()
			defer os.Remove(walPath)
		}
	}
	sinkCfg := wire.SinkConfig{
		Inst: inst, Scheduler: sched, Addr: cfg.addr, Recovery: rec,
		WALPath: walPath, SessionTTL: cfg.sessionTTL,
		Heartbeat: cfg.heartbeat, Conn: connOpts(cfg.heartbeat),
		Shards: cfg.shards,
	}
	if cfg.crashDemo {
		intervals := (inst.T + inst.Gamma - 1) / inst.Gamma
		sinkCfg.HaltAfter = intervals / 2
	}
	sink, err := wire.NewSink(sinkCfg)
	if err != nil {
		return err
	}
	defer sink.Close()
	fmt.Printf("sinkd: %s scheduler, %d sensors, T=%d slots, Γ=%d, listening on %s\n",
		sched.Name(), len(inst.Sensors), inst.T, inst.Gamma, sink.Addr())

	addr := sink.Addr()
	var proxy *wire.ChaosProxy
	var inj *fault.Injector
	if !cfg.serve && cfg.chaos > 0 {
		plan := fault.Plan{
			Seed: cfg.seed, DropProbe: cfg.chaos, DropAck: cfg.chaos,
			DropSchedule: cfg.chaos, DropFinish: cfg.chaos, MaxRetries: cfg.retries,
		}
		proxy, err = wire.NewChaosProxy(addr, wire.ChaosConfig{Plan: plan, MaxDelay: cfg.delay}, len(inst.Sensors), inst.T)
		if err != nil {
			return err
		}
		defer proxy.Close()
		addr = proxy.Addr()
		if inj, err = fault.NewInjector(plan, len(inst.Sensors), inst.T); err != nil {
			return err
		}
		fmt.Printf("sinkd: chaos proxy on %s (drop %.0f%%, delay ≤ %v)\n", addr, 100*cfg.chaos, cfg.delay)
	}

	ctx := context.Background()
	errs := make(chan error, len(inst.Sensors))
	var clients []*wire.SensorClient
	if !cfg.serve {
		for i := range inst.Sensors {
			scfg := wire.SensorConfigFor(inst, i)
			scfg.Faults = inj
			scfg.Conn = connOpts(cfg.heartbeat)
			scfg.Heartbeat = cfg.heartbeat
			if cfg.crashDemo {
				// The fleet must outlive the simulated crash and find the
				// restarted sink.
				scfg.Redial = &wire.Redial{
					MaxAttempts: 200, Base: 10 * time.Millisecond,
					Max: 200 * time.Millisecond, Seed: cfg.seed,
				}
			}
			client, err := wire.DialSensor(addr, scfg)
			if err != nil {
				return fmt.Errorf("dial sensor %d: %w", i, err)
			}
			clients = append(clients, client)
			go func() { errs <- client.Run(ctx) }()
		}
	} else {
		fmt.Printf("sinkd: waiting for %d sensor clients...\n", len(inst.Sensors))
	}
	if err := sink.WaitSensors(ctx); err != nil {
		return err
	}

	start := time.Now()
	res, err := sink.RunTour(ctx)
	if cfg.crashDemo && errors.Is(err, wire.ErrHalted) {
		bound := sink.Addr()
		fmt.Printf("crash-demo: sink halted after %d intervals; killing it and restarting from %s\n",
			sinkCfg.HaltAfter, walPath)
		sink.Close() // the simulated crash: connections severed, no End record
		restartCfg := sinkCfg
		restartCfg.Addr = bound // rebind so the redialing fleet finds us
		restartCfg.HaltAfter = 0
		sink, err = wire.NewSink(restartCfg)
		if err != nil {
			return fmt.Errorf("crash-demo restart: %w", err)
		}
		defer sink.Close()
		if err := sink.WaitSensors(ctx); err != nil {
			return err
		}
		res, err = sink.RunTour(ctx)
		if err == nil {
			fmt.Println("crash-demo: journal replayed, tour resumed and completed")
		}
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	sink.Close()
	if proxy != nil {
		proxy.Close()
	}
	if !cfg.serve {
		// Explicitly close the fleet so redial-enabled clients exit now
		// instead of exhausting their reconnect budget against a dead sink.
		for _, client := range clients {
			client.Close()
		}
		for range inst.Sensors {
			if err := <-errs; err != nil {
				return fmt.Errorf("sensor client: %w", err)
			}
		}
	}
	report(cfg, inst, sched, res, elapsed, proxy)
	if cfg.stats {
		dumpStats()
	}
	return nil
}

// report prints the tour outcome and, on a fault-free demo, the
// byte-for-byte parity check against the in-process runner.
func report(cfg config, inst *core.Instance, sched online.Scheduler, res *online.Result, elapsed time.Duration, proxy *wire.ChaosProxy) {
	fmt.Printf("tour: %.3f Mb over %d intervals in %v (wall clock)\n",
		core.ThroughputMb(res.Data), res.Intervals, elapsed.Round(time.Millisecond))
	m := res.Messages
	fmt.Printf("messages: %d probes, %d acks, %d schedules, %d finishes, %d retransmits, %d repairs (total %d)\n",
		m.Probes, m.Acks, m.Schedules, m.Finishes, m.Retransmits, m.RepairUnicasts, m.Total())
	if res.Fault != nil {
		fmt.Printf("recovery: %d retransmission rounds, %d budget clamps, %d missed schedules, %d repaired / %d lost slots, %d degraded intervals\n",
			res.Fault.ProbeRetransmissions, res.Fault.BudgetClamps, res.Fault.SchedulesMissed,
			res.Fault.RepairedSlots, res.Fault.LostSlots, res.Fault.DegradedIntervals)
	}
	if proxy != nil {
		cs := proxy.Stats()
		fmt.Printf("chaos: dropped %d frames (%d probes, %d acks, %d schedules, %d repairs, %d finishes), delayed %d\n",
			cs.Dropped(), cs.DroppedProbes, cs.DroppedAcks, cs.DroppedSchedules, cs.DroppedRepairs, cs.DroppedFinishes, cs.Delayed)
	}
	if err := res.CheckLemma1(); err != nil {
		fmt.Println("lemma 1: VIOLATED:", err)
	} else {
		fmt.Println("lemma 1: ok (every sensor registered in ≤ 2 consecutive intervals)")
	}
	if cfg.serve || cfg.chaos > 0 {
		return
	}
	want, err := online.Run(inst, sched)
	if err != nil {
		fmt.Println("parity: in-process run failed:", err)
		return
	}
	switch {
	case res.Data != want.Data:
		fmt.Printf("parity: MISMATCH — wire %v bits, in-process %v bits\n", res.Data, want.Data)
	case !reflect.DeepEqual(res.Alloc.SlotOwner, want.Alloc.SlotOwner):
		fmt.Println("parity: MISMATCH — slot assignments diverge")
	case res.Messages != want.Messages:
		fmt.Printf("parity: MISMATCH — wire %+v, in-process %+v\n", res.Messages, want.Messages)
	default:
		fmt.Println("parity: wire tour byte-identical to in-process online.Run")
	}
}

// runFleet is -connect mode: the sensor side only, built from the same
// flags as the remote sink.
func runFleet(cfg config, inst *core.Instance) error {
	ctx := context.Background()
	errs := make(chan error, len(inst.Sensors))
	for i := range inst.Sensors {
		scfg := wire.SensorConfigFor(inst, i)
		scfg.Conn = connOpts(cfg.heartbeat)
		scfg.Heartbeat = cfg.heartbeat
		// A remote fleet reconnects and resumes on transport failures
		// (including a sink restart from its journal).
		scfg.Redial = &wire.Redial{
			MaxAttempts: 30, Base: 20 * time.Millisecond,
			Max: 500 * time.Millisecond, Seed: cfg.seed,
		}
		client, err := wire.DialSensor(cfg.connect, scfg)
		if err != nil {
			return fmt.Errorf("dial sensor %d: %w", i, err)
		}
		go func() { errs <- client.Run(ctx) }()
	}
	fmt.Printf("sinkd: %d sensor clients connected to %s; serving until the sink closes\n",
		len(inst.Sensors), cfg.connect)
	for range inst.Sensors {
		if err := <-errs; err != nil {
			return fmt.Errorf("sensor client: %w", err)
		}
	}
	fmt.Println("sinkd: tour complete, sink closed the connections")
	return nil
}

// dumpStats prints the wire metrics from the process snapshot, sorted
// for stable diffing.
func dumpStats() {
	snap := metrics.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		if strings.HasPrefix(k, "wire_") || strings.HasPrefix(k, "wal_") {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	fmt.Println("--- wire metrics snapshot ---")
	for _, k := range keys {
		fmt.Printf("%s %g\n", k, snap[k])
	}
	dumpPercentiles()
}

// dumpPercentiles prints the wire latency histograms as a p50/p95/p99/
// p99.9 table — the -fleet mode's exit report.
func dumpPercentiles() {
	hists := wire.LatencyHistograms()
	names := make([]string, 0, len(hists))
	for name, h := range hists {
		if h.Count() > 0 {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	fmt.Println("--- latency percentiles ---")
	fmt.Printf("%-40s %12s %12s %12s %12s\n", "histogram", "p50", "p95", "p99", "p99.9")
	for _, name := range names {
		h := hists[name]
		fmt.Printf("%-40s %12s %12s %12s %12s\n", name,
			fmtLatency(name, h.Quantile(0.50)), fmtLatency(name, h.Quantile(0.95)),
			fmtLatency(name, h.Quantile(0.99)), fmtLatency(name, h.Quantile(0.999)))
	}
}

// fmtLatency renders one histogram value as a duration, using the
// metric-name suffix to pick the recorded unit.
func fmtLatency(name string, v float64) string {
	if strings.HasSuffix(name, "_seconds") {
		v *= 1e9
	}
	return time.Duration(v).Round(time.Microsecond).String()
}
