package main

import "testing"

// TestDemoTour runs the full loopback demo — sink server, sensor fleet,
// one tour — on a small instance and checks it completes cleanly
// (run itself performs the in-process parity comparison).
func TestDemoTour(t *testing.T) {
	cfg := config{
		addr: "127.0.0.1:0", algo: "greedy",
		n: 30, seed: 3, pathLen: 1200, offset: 40, speed: 5, tau: 1,
	}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDemoTourChaos runs the demo with the chaos proxy interposed.
func TestDemoTourChaos(t *testing.T) {
	cfg := config{
		addr: "127.0.0.1:0", algo: "appro",
		n: 20, seed: 4, pathLen: 800, offset: 40, speed: 5, tau: 1,
		chaos: 0.2, retries: 2, window: 50_000_000, // 50ms
	}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDemoTourCrashRestart runs the crash-restart demo: the sink halts
// mid-tour, a successor replays the journal and finishes, and run's
// parity check still compares the stitched tour against online.Run.
func TestDemoTourCrashRestart(t *testing.T) {
	cfg := config{
		addr: "127.0.0.1:0", algo: "greedy",
		n: 20, seed: 6, pathLen: 1200, offset: 40, speed: 5, tau: 1,
		crashDemo: true, sessionTTL: 30_000_000_000, // 30s
	}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDemoTourHeartbeat runs the loopback demo with keepalives and the
// derived deadlines enabled on both ends.
func TestDemoTourHeartbeat(t *testing.T) {
	cfg := config{
		addr: "127.0.0.1:0", algo: "greedy",
		n: 12, seed: 8, pathLen: 800, offset: 40, speed: 5, tau: 1,
		heartbeat: 50_000_000, // 50ms
	}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBuildInstanceRejectsBadParams(t *testing.T) {
	if _, err := buildInstance(config{n: -1, pathLen: 800, offset: 40, speed: 5, tau: 1, seed: 1}); err == nil {
		t.Fatal("expected error for negative sensor count")
	}
}

func TestUnknownScheduler(t *testing.T) {
	cfg := config{addr: "127.0.0.1:0", algo: "nope", n: 5, seed: 1, pathLen: 400, offset: 40, speed: 5, tau: 1}
	if err := run(cfg); err == nil {
		t.Fatal("expected unknown-scheduler error")
	}
}
