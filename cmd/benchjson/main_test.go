package main

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkSolvers/Offline_Appro/N=100-8   \t  1353\t   1633733 ns/op\t   16417 B/op\t       2 allocs/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if r.Name != "BenchmarkSolvers/Offline_Appro/N=100" {
		t.Fatalf("Name = %q", r.Name)
	}
	if r.Case != "Offline_Appro" || r.N != 100 || r.Degraded {
		t.Fatalf("Case/N/Degraded = %q/%d/%v", r.Case, r.N, r.Degraded)
	}
	if r.Iterations != 1353 || r.NsPerOp != 1633733 || r.BytesPerOp != 16417 || r.AllocsPerOp != 2 {
		t.Fatalf("metrics = %+v", r)
	}
	if _, ok := parseLine("ok  \tmobisink/internal/solve\t7.9s"); ok {
		t.Fatal("trailer accepted")
	}
	if _, ok := parseLine("goos: linux"); ok {
		t.Fatal("header accepted")
	}

	r, ok = parseLine("BenchmarkSolvers/Offline_Appro_Fleet/K=2/N=100-8    50    9000000 ns/op")
	if !ok {
		t.Fatal("fleet line rejected")
	}
	if r.K != 2 || r.N != 100 || r.Case != "Offline_Appro_Fleet" {
		t.Fatalf("K/N/Case = %d/%d/%q", r.K, r.N, r.Case)
	}
}

func TestParseAll(t *testing.T) {
	in := `goos: linux
BenchmarkSolvers/Offline_Appro/N=50-4    100    500 ns/op    16 B/op    2 allocs/op
BenchmarkSolvers/Offline_Appro_Degraded-4   50   900 ns/op
PASS
`
	results, err := parseAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d rows, want 2", len(results))
	}
	if !results[1].Degraded {
		t.Fatal("degraded row not flagged")
	}
}

func TestParseAllMergesRepeatedRows(t *testing.T) {
	in := `BenchmarkSolvers/Offline_Appro/N=50-4    100    700 ns/op    32 B/op    4 allocs/op
BenchmarkSolvers/Offline_Appro/N=50-4    120    500 ns/op    16 B/op    2 allocs/op
BenchmarkSolvers/Offline_Appro/N=50-4    110    600 ns/op    24 B/op    3 allocs/op
`
	results, err := parseAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("merged to %d rows, want 1", len(results))
	}
	r := results[0]
	if r.NsPerOp != 500 || r.BytesPerOp != 16 || r.AllocsPerOp != 2 || r.Iterations != 120 {
		t.Fatalf("min-merge wrong: %+v", r)
	}
}

func row(name string, ns float64, allocs int64) Result {
	return Result{Name: name, NsPerOp: ns, AllocsPerOp: allocs, Iterations: 1}
}

func TestCompareResultsGate(t *testing.T) {
	baseline := []Result{row("A", 1000, 10), row("B", 2000, 4)}

	// Within threshold: no regressions, no refresh trigger.
	regs, improved := compareResults(baseline, []Result{row("A", 1050, 10), row("B", 2100, 4)}, 10)
	if len(regs) != 0 || improved {
		t.Fatalf("within-threshold run: regs=%v improved=%v", regs, improved)
	}

	// ns/op regression beyond threshold fails.
	regs, _ = compareResults(baseline, []Result{row("A", 1200, 10), row("B", 2000, 4)}, 10)
	if len(regs) != 1 || !strings.Contains(regs[0], "ns/op") {
		t.Fatalf("ns regression missed: %v", regs)
	}

	// allocs/op regression beyond threshold fails.
	regs, _ = compareResults(baseline, []Result{row("A", 1000, 12), row("B", 2000, 4)}, 10)
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Fatalf("alloc regression missed: %v", regs)
	}

	// A vanished baseline row fails.
	regs, _ = compareResults(baseline, []Result{row("A", 1000, 10)}, 10)
	if len(regs) != 1 || !strings.Contains(regs[0], "missing") {
		t.Fatalf("missing row not flagged: %v", regs)
	}

	// A big improvement triggers the baseline refresh.
	regs, improved = compareResults(baseline, []Result{row("A", 500, 10), row("B", 2000, 4)}, 10)
	if len(regs) != 0 || !improved {
		t.Fatalf("improvement run: regs=%v improved=%v", regs, improved)
	}

	// threshold <= 0: report-only — nothing fails and nothing triggers a
	// baseline refresh (a 1-iteration sanity run must be side-effect free).
	regs, improved = compareResults(baseline, []Result{row("A", 9000, 99)}, 0)
	if len(regs) != 0 || improved {
		t.Fatalf("report-only mode not side-effect free: regs=%v improved=%v", regs, improved)
	}
	regs, improved = compareResults(baseline, []Result{row("A", 1, 1)}, 0)
	if len(regs) != 0 || improved {
		t.Fatalf("report-only improvement still triggers refresh: regs=%v improved=%v", regs, improved)
	}

	// Zero-alloc baselines regress on any new allocation.
	zb := []Result{row("Z", 100, 0)}
	regs, _ = compareResults(zb, []Result{row("Z", 100, 1)}, 10)
	if len(regs) != 1 {
		t.Fatalf("0->1 alloc regression missed: %v", regs)
	}
}
