// Command benchjson converts `go test -bench` text output into JSON, so
// benchmark campaigns (make bench) leave a machine-readable artifact
// behind instead of a scrollback log.
//
// It reads the benchmark log on stdin and writes a JSON array; lines that
// are not benchmark results (the ok/PASS trailer, goos/goarch headers)
// are ignored. Sub-benchmark paths are split on "/" and an N=<size>
// component, when present, is lifted into its own field:
//
//	go test -bench BenchmarkSolvers -benchmem ./internal/solve | benchjson -o BENCH_solvers.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	// Name is the full benchmark path, GOMAXPROCS suffix stripped
	// (e.g. "BenchmarkSolvers/Offline_Appro/N=100").
	Name string `json:"name"`
	// Case is the first sub-benchmark component, when any (e.g.
	// "Offline_Appro").
	Case string `json:"case,omitempty"`
	// N is the problem size parsed from an "N=<int>" path component;
	// 0 when the benchmark has none.
	N int `json:"n,omitempty"`
	// Degraded marks the fallback-scheduler rows (a "_Degraded" case
	// suffix), so overhead comparisons against the primary solver rows
	// need no name parsing downstream.
	Degraded    bool    `json:"degraded,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Iterations: iters}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	r.Name = name
	parts := strings.Split(name, "/")
	if len(parts) > 1 {
		r.Case = parts[1]
		r.Degraded = strings.HasSuffix(parts[1], "_Degraded")
	}
	for _, p := range parts {
		if v, ok := strings.CutPrefix(p, "N="); ok {
			if n, err := strconv.Atoi(v); err == nil {
				r.N = n
			}
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp, _ = strconv.ParseFloat(val, 64)
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	return r, true
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
	}
}
