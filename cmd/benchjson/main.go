// Command benchjson converts `go test -bench` text output into JSON, so
// benchmark campaigns (make bench) leave a machine-readable artifact
// behind instead of a scrollback log.
//
// It reads the benchmark log on stdin and writes a JSON array; lines that
// are not benchmark results (the ok/PASS trailer, goos/goarch headers)
// are ignored. Sub-benchmark paths are split on "/" and N=<size> and
// K=<fleet> components, when present, are lifted into their own fields:
//
//	go test -bench BenchmarkSolvers -benchmem ./internal/solve | benchjson -o BENCH_solvers.json
//
// With -compare FILE it additionally gates the new results against a
// baseline JSON: any row whose ns/op or allocs/op regressed by more than
// -threshold percent fails the run (exit 1), as does a baseline row
// missing from the new output. When every row holds and at least one
// improved past the threshold, the baseline is rewritten so the win is
// locked in for future runs; -update forces the rewrite. -threshold 0 (or
// negative) reports the comparison without ever failing — the sanity mode
// `make test` uses.
//
//	go test -bench BenchmarkSolvers -benchmem ./internal/solve | benchjson -compare BENCH_solvers.json -threshold 10
//
// With -cpuprofile FILE it self-runs the benchmark under the profiler
// instead of reading stdin (see -pkg and -pattern), leaving a pprof
// profile behind for profiling-guided optimization work:
//
//	benchjson -cpuprofile cpu.out -pattern 'BenchmarkSolvers/Offline_Appro$' -pkg ./internal/solve
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	// Name is the full benchmark path, GOMAXPROCS suffix stripped
	// (e.g. "BenchmarkSolvers/Offline_Appro/N=100").
	Name string `json:"name"`
	// Case is the first sub-benchmark component, when any (e.g.
	// "Offline_Appro").
	Case string `json:"case,omitempty"`
	// N is the problem size parsed from an "N=<int>" path component;
	// 0 when the benchmark has none.
	N int `json:"n,omitempty"`
	// K is the sink fleet size parsed from a "K=<int>" path component;
	// 0 when the benchmark is single-sink.
	K int `json:"k,omitempty"`
	// Degraded marks the fallback-scheduler rows (a "_Degraded" case
	// suffix), so overhead comparisons against the primary solver rows
	// need no name parsing downstream.
	Degraded    bool    `json:"degraded,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Iterations: iters}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	r.Name = name
	parts := strings.Split(name, "/")
	if len(parts) > 1 {
		r.Case = parts[1]
		r.Degraded = strings.HasSuffix(parts[1], "_Degraded")
	}
	for _, p := range parts {
		if v, ok := strings.CutPrefix(p, "N="); ok {
			if n, err := strconv.Atoi(v); err == nil {
				r.N = n
			}
		}
		if v, ok := strings.CutPrefix(p, "K="); ok {
			if k, err := strconv.Atoi(v); err == nil {
				r.K = k
			}
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp, _ = strconv.ParseFloat(val, 64)
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	return r, true
}

// compareResults gates fresh results against a baseline. It returns the
// per-row regression messages (empty means the gate holds) and whether any
// row improved past the threshold (the refresh trigger). threshold ≤ 0
// never produces regressions.
func compareResults(baseline, fresh []Result, threshold float64) (regressions []string, improved bool) {
	byName := make(map[string]Result, len(fresh))
	for _, r := range fresh {
		byName[r.Name] = r
	}
	for _, old := range baseline {
		now, ok := byName[old.Name]
		if !ok {
			if threshold > 0 {
				regressions = append(regressions, fmt.Sprintf("%s: missing from new results", old.Name))
			}
			continue
		}
		if old.NsPerOp > 0 {
			pct := (now.NsPerOp - old.NsPerOp) / old.NsPerOp * 100
			if threshold > 0 && pct > threshold {
				regressions = append(regressions,
					fmt.Sprintf("%s: ns/op %.0f -> %.0f (%+.1f%%)", old.Name, old.NsPerOp, now.NsPerOp, pct))
			}
			if threshold > 0 && pct < -threshold {
				improved = true
			}
		}
		if old.AllocsPerOp > 0 {
			pct := float64(now.AllocsPerOp-old.AllocsPerOp) / float64(old.AllocsPerOp) * 100
			if threshold > 0 && pct > threshold {
				regressions = append(regressions,
					fmt.Sprintf("%s: allocs/op %d -> %d (%+.1f%%)", old.Name, old.AllocsPerOp, now.AllocsPerOp, pct))
			}
			if threshold > 0 && pct < -threshold {
				improved = true
			}
		} else if threshold > 0 && now.AllocsPerOp > old.AllocsPerOp {
			regressions = append(regressions,
				fmt.Sprintf("%s: allocs/op %d -> %d", old.Name, old.AllocsPerOp, now.AllocsPerOp))
		}
	}
	return regressions, improved
}

func writeJSON(path string, results []Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// selfProfile runs the benchmark under the CPU profiler instead of
// consuming stdin.
func selfProfile(profile, pkg, pattern string) error {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern,
		"-cpuprofile", profile, pkg)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	fmt.Fprintf(os.Stderr, "benchjson: %s\n", strings.Join(cmd.Args, " "))
	return cmd.Run()
}

// parseAll reads a benchmark log and merges repeated rows (a `-count N`
// run) by taking each metric's minimum — the noise-robust estimator: on a
// busy machine the fastest repetition is the one least perturbed by
// co-tenant load, and allocs/op is deterministic so min loses nothing.
func parseAll(in io.Reader) ([]Result, error) {
	var results []Result
	index := map[string]int{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		r, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if i, seen := index[r.Name]; seen {
			prev := &results[i]
			prev.Iterations = max(prev.Iterations, r.Iterations)
			prev.NsPerOp = min(prev.NsPerOp, r.NsPerOp)
			prev.BytesPerOp = min(prev.BytesPerOp, r.BytesPerOp)
			prev.AllocsPerOp = min(prev.AllocsPerOp, r.AllocsPerOp)
			continue
		}
		index[r.Name] = len(results)
		results = append(results, r)
	}
	return results, sc.Err()
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.String("compare", "", "baseline JSON to gate new results against")
	threshold := flag.Float64("threshold", 10, "regression threshold in percent; <= 0 means report-only")
	update := flag.Bool("update", false, "with -compare: always rewrite the baseline with the new results")
	cpuprofile := flag.String("cpuprofile", "", "self-run the benchmark under the CPU profiler, writing the profile here")
	pkg := flag.String("pkg", "./internal/solve", "package to benchmark in -cpuprofile mode")
	pattern := flag.String("pattern", "BenchmarkSolvers", "benchmark regexp in -cpuprofile mode")
	flag.Parse()

	if *cpuprofile != "" {
		if err := selfProfile(*cpuprofile, *pkg, *pattern); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: profile run: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote CPU profile to %s\n", *cpuprofile)
		return
	}

	results, err := parseAll(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	if *compare != "" {
		raw, err := os.ReadFile(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: read baseline: %v\n", err)
			os.Exit(1)
		}
		var baseline []Result
		if err := json.Unmarshal(raw, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parse baseline %s: %v\n", *compare, err)
			os.Exit(1)
		}
		regressions, improved := compareResults(baseline, results, *threshold)
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) beyond %.0f%% vs %s:\n", len(regressions), *threshold, *compare)
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %d rows within %.0f%% of %s\n", len(results), *threshold, *compare)
		if *update || improved {
			if err := writeJSON(*compare, results); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: refresh baseline: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "benchjson: baseline %s refreshed\n", *compare)
		}
		if *out == "" {
			return
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
	}
}
