package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// smallConfig keeps test campaigns to a fraction of a second: a short
// path (few intervals) and a small fleet.
func smallConfig(n int) config {
	return config{
		n: n, algo: "greedy", seed: 5, pathLen: 600, offset: 40,
		speed: 5, tau: 1, arrival: "uniform", ramp: 30 * time.Millisecond,
		retries: 3, window: 100 * time.Millisecond,
	}
}

func TestRunSmallFleet(t *testing.T) {
	var out bytes.Buffer
	rep, err := run(smallConfig(16), &out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DataMb <= 0 {
		t.Error("campaign collected no data")
	}
	if rep.Sensors != 16 || rep.Intervals <= 0 {
		t.Errorf("report %+v lacks fleet shape", rep)
	}
	if rep.JoinP99 <= 0 || rep.JoinP99 < rep.JoinP50 {
		t.Errorf("join percentiles inconsistent: p50 %v p99 %v", rep.JoinP50, rep.JoinP99)
	}
	if rep.RegRoundtripP99 <= 0 {
		t.Error("no sink-side registration roundtrip recorded")
	}
	if !bytes.Contains(out.Bytes(), []byte("join latency")) {
		t.Error("report output missing the join latency line")
	}
}

func TestRunSerialModeAndJSON(t *testing.T) {
	cfg := smallConfig(12)
	cfg.serial = true
	cfg.stats = true
	cfg.jsonOut = filepath.Join(t.TempDir(), "fleet.json")
	var out bytes.Buffer
	rep, err := run(cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DataMb <= 0 {
		t.Error("serial campaign collected no data")
	}
	raw, err := os.ReadFile(cfg.jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	var rows []jsonRow
	if err := json.Unmarshal(raw, &rows); err != nil {
		t.Fatalf("artifact is not benchjson-shaped: %v", err)
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if r.N != 12 || r.NsPerOp < 0 || r.Iterations != 1 {
			t.Errorf("malformed row %+v", r)
		}
		seen[r.Case] = true
	}
	for _, want := range []string{"TourWall", "JoinP99", "RegRoundtripP99", "BroadcastFanoutP99", "IntervalCommitP99"} {
		if !seen[want] {
			t.Errorf("artifact missing %s row", want)
		}
	}
	if !bytes.Contains(out.Bytes(), []byte("wire metrics snapshot")) {
		t.Error("-stats output missing the snapshot dump")
	}
}

func TestRunChaosFleet(t *testing.T) {
	cfg := smallConfig(10)
	cfg.chaos = 0.1
	cfg.window = 40 * time.Millisecond
	var out bytes.Buffer
	rep, err := run(cfg, &out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DataMb <= 0 {
		t.Error("chaos campaign collected no data")
	}
}

func TestArrivalOffsets(t *testing.T) {
	cfg := smallConfig(100)
	cfg.ramp = time.Second

	uni := arrivalOffsets(cfg)
	for i := 1; i < len(uni); i++ {
		if uni[i] < uni[i-1] {
			t.Fatalf("uniform offsets not monotone at %d", i)
		}
	}
	if uni[0] != 0 || uni[99] >= cfg.ramp {
		t.Errorf("uniform ramp spans [%v, %v], want [0, <%v)", uni[0], uni[99], cfg.ramp)
	}

	cfg.arrival = "poisson"
	poi := arrivalOffsets(cfg)
	for i := 1; i < len(poi); i++ {
		if poi[i] < poi[i-1] {
			t.Fatalf("poisson offsets not monotone at %d", i)
		}
	}
	if poi[0] <= 0 {
		t.Error("poisson first arrival should be strictly positive")
	}

	cfg.arrival = "burst"
	for i, d := range arrivalOffsets(cfg) {
		if d != 0 {
			t.Fatalf("burst offset %d = %v, want 0", i, d)
		}
	}
}

func TestRunRejectsUnknownArrival(t *testing.T) {
	cfg := smallConfig(4)
	cfg.arrival = "thundering-herd"
	if _, err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown arrival process accepted")
	}
}

func TestExactQuantile(t *testing.T) {
	lat := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := exactQuantile(lat, 0.5); got != 5 {
		t.Errorf("p50 = %v, want 5", got)
	}
	if got := exactQuantile(lat, 0.99); got != 10 {
		t.Errorf("p99 = %v, want 10", got)
	}
	if got := exactQuantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}
