// Command loadgen is the wire transport's open-loop fleet driver: it
// spawns thousands of in-process sensor clients against a sink on an
// arrival schedule (uniform ramp, Poisson process, or instantaneous
// burst), runs one tour, and reports the latency tails — client-side
// join (dial + handshake + session sync) percentiles from exact
// samples, and the sink-side wire histograms (registration roundtrip,
// broadcast fan-out stall, interval commit) at p50/p95/p99/p99.9.
//
//	loadgen -n 1000                         uniform ramp, sharded sink
//	loadgen -n 1000 -serial                 legacy serial write loop
//	loadgen -n 5000 -arrival burst -shards 16
//	loadgen -n 1000 -json fleet.json        benchjson-shaped artifact
//
// The -json artifact uses the same row shape as BENCH_wire.json, so a
// before/after pair can be diffed with `benchjson -compare`.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"mobisink/internal/core"
	"mobisink/internal/energy"
	"mobisink/internal/fault"
	"mobisink/internal/metrics"
	"mobisink/internal/network"
	"mobisink/internal/radio"
	"mobisink/internal/solve"
	"mobisink/internal/wire"
)

type config struct {
	n       int
	shards  int
	queue   int
	serial  bool
	algo    string
	seed    int64
	pathLen float64
	offset  float64
	speed   float64
	tau     float64
	arrival string
	ramp    time.Duration
	chaos   float64
	retries int
	window  time.Duration
	jsonOut string
	stats   bool
}

func main() {
	var cfg config
	flag.IntVar(&cfg.n, "n", 1000, "fleet size (sensor clients)")
	flag.IntVar(&cfg.shards, "shards", 0, "broadcast writer shards (0 = sink default)")
	flag.IntVar(&cfg.queue, "queue", 0, "per-connection outbound queue depth (0 = sink default)")
	flag.BoolVar(&cfg.serial, "serial", false, "use the legacy serial write loop instead of the sharded plane")
	flag.StringVar(&cfg.algo, "algo", "greedy", "per-interval scheduler: appro, maxmatch, greedy, or sequential")
	flag.Int64Var(&cfg.seed, "seed", 1, "topology, budget, and arrival seed")
	flag.Float64Var(&cfg.pathLen, "path", 2000, "sink path length, m")
	flag.Float64Var(&cfg.offset, "offset", 40, "max sensor offset from the path, m")
	flag.Float64Var(&cfg.speed, "speed", 5, "sink speed, m/s")
	flag.Float64Var(&cfg.tau, "tau", 1, "slot length, s")
	flag.StringVar(&cfg.arrival, "arrival", "uniform", "client arrival process: uniform, poisson, or burst")
	flag.DurationVar(&cfg.ramp, "ramp", 500*time.Millisecond, "arrival ramp length (uniform and poisson)")
	flag.Float64Var(&cfg.chaos, "chaos", 0, "route the fleet through a chaos proxy with this uniform drop rate")
	flag.IntVar(&cfg.retries, "retries", 3, "recovery retransmission rounds (chaos mode)")
	flag.DurationVar(&cfg.window, "window", 100*time.Millisecond, "registration and confirm window (chaos mode)")
	flag.StringVar(&cfg.jsonOut, "json", "", "write a benchjson-shaped latency artifact to this file")
	flag.BoolVar(&cfg.stats, "stats", false, "also dump the raw wire metrics snapshot")
	flag.Parse()

	if _, err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// report is one loadgen campaign's outcome.
type report struct {
	Sensors   int
	Intervals int
	DataMb    float64
	TourWall  time.Duration
	// Join percentiles are exact (computed from every client's sample):
	// dial + handshake + Resume/Sync, the client-observed cost of
	// entering the fleet.
	JoinP50, JoinP95, JoinP99, JoinP999 time.Duration
	// Sink-side histogram percentiles, nanoseconds.
	RegRoundtripP99    float64
	BroadcastFanoutP99 float64
	IntervalCommitP99  float64
}

// arrivalOffsets builds the open-loop arrival schedule: each client
// dials at its offset from campaign start, regardless of how earlier
// dials are faring (that independence is what makes the driver
// open-loop rather than feedback-throttled).
func arrivalOffsets(cfg config) []time.Duration {
	out := make([]time.Duration, cfg.n)
	switch cfg.arrival {
	case "burst":
		// all zero: every client dials at once
	case "poisson":
		rng := rand.New(rand.NewSource(cfg.seed ^ 0x10adfeed))
		mean := float64(cfg.ramp) / float64(cfg.n)
		at := 0.0
		for i := range out {
			at += rng.ExpFloat64() * mean
			out[i] = time.Duration(at)
		}
	default: // uniform
		for i := range out {
			out[i] = cfg.ramp * time.Duration(i) / time.Duration(cfg.n)
		}
	}
	return out
}

func buildInstance(cfg config) (*core.Instance, error) {
	dep, err := network.Generate(network.Params{
		N: cfg.n, PathLength: cfg.pathLen, MaxOffset: cfg.offset, Seed: cfg.seed,
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	if err := dep.AssignSteadyStateBudgets(energy.PaperSolar(energy.Sunny), 10000/cfg.speed, 0.2, rng); err != nil {
		return nil, err
	}
	return core.BuildInstance(dep, radio.Paper2013(), cfg.speed, cfg.tau)
}

// run drives one campaign: build the instance, start the sink (sharded
// or serial), ramp the fleet in on the arrival schedule, run the tour,
// and report the tails. It is the testable core of the command.
func run(cfg config, out io.Writer) (*report, error) {
	if cfg.arrival != "uniform" && cfg.arrival != "poisson" && cfg.arrival != "burst" {
		return nil, fmt.Errorf("unknown arrival process %q (want uniform, poisson, or burst)", cfg.arrival)
	}
	inst, err := buildInstance(cfg)
	if err != nil {
		return nil, err
	}
	sched, err := solve.NewScheduler(cfg.algo, solve.Options{})
	if err != nil {
		return nil, err
	}
	shards := cfg.shards
	if cfg.serial {
		shards = -1
	}
	var rec *wire.Recovery
	if cfg.chaos > 0 {
		rec = &wire.Recovery{MaxRetries: cfg.retries, RegWindow: cfg.window, ConfirmWindow: cfg.window}
	}
	sink, err := wire.NewSink(wire.SinkConfig{
		Inst: inst, Scheduler: sched, Recovery: rec,
		Shards: shards, Queue: cfg.queue,
	})
	if err != nil {
		return nil, err
	}
	defer sink.Close()

	addr := sink.Addr()
	var proxy *wire.ChaosProxy
	var inj *fault.Injector
	if cfg.chaos > 0 {
		plan := fault.Plan{
			Seed: cfg.seed, DropProbe: cfg.chaos, DropAck: cfg.chaos,
			DropSchedule: cfg.chaos, DropFinish: cfg.chaos, MaxRetries: cfg.retries,
		}
		proxy, err = wire.NewChaosProxy(addr, wire.ChaosConfig{Plan: plan}, cfg.n, inst.T)
		if err != nil {
			return nil, err
		}
		defer proxy.Close()
		addr = proxy.Addr()
		if inj, err = fault.NewInjector(plan, cfg.n, inst.T); err != nil {
			return nil, err
		}
	}

	mode := fmt.Sprintf("sharded (W=%d)", effectiveShards(shards))
	if cfg.serial {
		mode = "serial"
	}
	fmt.Fprintf(out, "loadgen: %d sensors, %s arrival over %v, %s sink, %s scheduler\n",
		cfg.n, cfg.arrival, cfg.ramp, mode, sched.Name())

	// Ramp the fleet in. Every client records its join latency (dial
	// through completed Resume/Sync) and then runs its protocol loop.
	offsets := arrivalOffsets(cfg)
	joins := make(chan time.Duration, cfg.n)
	dialErrs := make(chan error, cfg.n)
	runErrs := make(chan error, cfg.n)
	clients := make([]*wire.SensorClient, cfg.n)
	start := time.Now()
	for i := 0; i < cfg.n; i++ {
		i := i
		go func() {
			if d := time.Until(start.Add(offsets[i])); d > 0 {
				time.Sleep(d)
			}
			scfg := wire.SensorConfigFor(inst, i)
			scfg.Faults = inj
			dialAt := time.Now()
			c, err := wire.DialSensor(addr, scfg)
			if err != nil {
				dialErrs <- fmt.Errorf("dial sensor %d: %w", i, err)
				return
			}
			joins <- time.Since(dialAt)
			clients[i] = c
			dialErrs <- nil
			runErrs <- c.Run(context.Background())
		}()
	}
	for i := 0; i < cfg.n; i++ {
		if err := <-dialErrs; err != nil {
			return nil, err
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	if err := sink.WaitSensors(ctx); err != nil {
		return nil, err
	}
	tourAt := time.Now()
	res, err := sink.RunTour(ctx)
	if err != nil {
		return nil, err
	}
	rep := &report{
		Sensors:   cfg.n,
		Intervals: res.Intervals,
		DataMb:    core.ThroughputMb(res.Data),
		TourWall:  time.Since(tourAt),
	}
	// Clients close first so Run returns nil through the userClosed
	// path; closing the sink first races its conn teardown against
	// clients still draining their final frames, which at fleet scale
	// can surface as a spurious connection reset.
	for _, c := range clients {
		c.Close()
	}
	sink.Close()
	if proxy != nil {
		proxy.Close()
	}
	for i := 0; i < cfg.n; i++ {
		if err := <-runErrs; err != nil {
			return nil, fmt.Errorf("sensor client: %w", err)
		}
	}

	lat := make([]time.Duration, 0, cfg.n)
	for len(lat) < cfg.n {
		lat = append(lat, <-joins)
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	rep.JoinP50 = exactQuantile(lat, 0.50)
	rep.JoinP95 = exactQuantile(lat, 0.95)
	rep.JoinP99 = exactQuantile(lat, 0.99)
	rep.JoinP999 = exactQuantile(lat, 0.999)

	hists := wire.LatencyHistograms()
	rep.RegRoundtripP99 = 1e9 * hists["wire_registration_roundtrip_seconds"].Quantile(0.99)
	rep.BroadcastFanoutP99 = hists["wire_broadcast_fanout_ns"].Quantile(0.99)
	rep.IntervalCommitP99 = hists["wire_interval_commit_ns"].Quantile(0.99)

	printReport(out, rep, hists)
	if cfg.stats {
		dumpSnapshot(out)
	}
	if cfg.jsonOut != "" {
		if err := writeJSON(cfg.jsonOut, cfg, rep); err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "loadgen: wrote %s\n", cfg.jsonOut)
	}
	return rep, nil
}

// effectiveShards mirrors the sink's normalization, for the banner.
func effectiveShards(shards int) int {
	switch {
	case shards == 0:
		return 8
	case shards > 64:
		return 64
	default:
		return shards
	}
}

// exactQuantile reads the q-th quantile from sorted samples (nearest-
// rank method; exact, unlike the histograms' in-bucket interpolation).
func exactQuantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func printReport(out io.Writer, rep *report, hists map[string]*metrics.Histogram) {
	fmt.Fprintf(out, "tour: %.3f Mb over %d intervals in %v\n",
		rep.DataMb, rep.Intervals, rep.TourWall.Round(time.Millisecond))
	fmt.Fprintf(out, "join latency (exact, %d samples): p50 %v  p95 %v  p99 %v  p99.9 %v\n",
		rep.Sensors, rep.JoinP50.Round(time.Microsecond), rep.JoinP95.Round(time.Microsecond),
		rep.JoinP99.Round(time.Microsecond), rep.JoinP999.Round(time.Microsecond))
	names := make([]string, 0, len(hists))
	for name, h := range hists {
		if h.Count() > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Fprintf(out, "%-40s %12s %12s %12s %12s\n", "sink histogram", "p50", "p95", "p99", "p99.9")
	for _, name := range names {
		h := hists[name]
		fmt.Fprintf(out, "%-40s %12s %12s %12s %12s\n", name,
			fmtLatency(name, h.Quantile(0.50)), fmtLatency(name, h.Quantile(0.95)),
			fmtLatency(name, h.Quantile(0.99)), fmtLatency(name, h.Quantile(0.999)))
	}
}

// fmtLatency renders a histogram value as a duration, picking the unit
// from the metric-name suffix (_seconds vs _ns).
func fmtLatency(name string, v float64) string {
	if strings.HasSuffix(name, "_seconds") {
		v *= 1e9
	}
	return time.Duration(v).Round(time.Microsecond).String()
}

func dumpSnapshot(out io.Writer) {
	snap := metrics.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		if strings.HasPrefix(k, "wire_") {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	fmt.Fprintln(out, "--- wire metrics snapshot ---")
	for _, k := range keys {
		fmt.Fprintf(out, "%s %g\n", k, snap[k])
	}
}

// jsonRow matches cmd/benchjson's Result shape, so loadgen artifacts
// from two builds can be gated against each other with -compare.
type jsonRow struct {
	Name       string  `json:"name"`
	Case       string  `json:"case,omitempty"`
	N          int     `json:"n,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

func writeJSON(path string, cfg config, rep *report) error {
	row := func(kind string, v float64) jsonRow {
		return jsonRow{
			Name:       fmt.Sprintf("Loadgen/%s/N=%d", kind, cfg.n),
			Case:       kind,
			N:          cfg.n,
			Iterations: 1,
			NsPerOp:    v,
		}
	}
	rows := []jsonRow{
		row("TourWall", float64(rep.TourWall.Nanoseconds())),
		row("JoinP50", float64(rep.JoinP50.Nanoseconds())),
		row("JoinP99", float64(rep.JoinP99.Nanoseconds())),
		row("JoinP999", float64(rep.JoinP999.Nanoseconds())),
		row("RegRoundtripP99", rep.RegRoundtripP99),
		row("BroadcastFanoutP99", rep.BroadcastFanoutP99),
		row("IntervalCommitP99", rep.IntervalCommitP99),
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
