// Package mobisink reproduces "Use of a Mobile Sink for Maximizing Data
// Collection in Energy Harvesting Sensor Networks" (Ren, Liang, Xu;
// ICPP 2013): a mobile sink travels a fixed path collecting data from
// one-hop, solar-powered sensors, and time slots must be allocated to
// sensors — one sensor per slot, each within its harvested energy budget —
// to maximize the data collected per tour.
//
// The implementation lives under internal/:
//
//   - internal/core    — the problem definition and offline algorithms
//     (Offline_Appro, Offline_MaxMatch, bounds);
//   - internal/online  — the distributed protocol (Algorithm 2) and the
//     Online_Appro / Online_MaxMatch schedulers;
//   - internal/gap, internal/knapsack, internal/matching — the
//     combinatorial engines;
//   - internal/geom, internal/radio, internal/energy, internal/network —
//     the simulation substrates;
//   - internal/exp — reproduction of every figure in the paper's
//     evaluation (run via cmd/mobisink).
//
// The benchmarks in bench_test.go time one representative cell of each
// figure plus ablations of the design choices; see DESIGN.md and
// EXPERIMENTS.md.
package mobisink
