package mobisink_test

// Fuzz targets for the parsing and combinatorial layers. `go test` runs the
// seed corpus as regular tests; `go test -fuzz=FuzzX` explores further.

import (
	"math"
	"strings"
	"testing"

	"mobisink/internal/core"
	"mobisink/internal/energy"
	"mobisink/internal/geom"
	"mobisink/internal/knapsack"
	"mobisink/internal/network"
	"mobisink/internal/radio"
)

// FuzzReadTraceCSV: the trace parser must never panic and any accepted
// trace must satisfy the Harvester contract on a few probes.
func FuzzReadTraceCSV(f *testing.F) {
	f.Add("0,0.001\n100,0.002\n", 0.0)
	f.Add("time,power\n0,1\n1,2\n2,0\n", 2.0)
	f.Add("# comment\n5,0\n", 0.0)
	f.Add("", 0.0)
	f.Add("a,b\nc,d\n", 0.0)
	f.Add("0,0.001,extra\n", 100.0)
	f.Add("0,-1\n", 0.0)
	f.Fuzz(func(t *testing.T, csv string, period float64) {
		if math.IsNaN(period) || math.IsInf(period, 0) {
			return
		}
		tr, err := energy.ReadTraceCSV(strings.NewReader(csv), period)
		if err != nil {
			return
		}
		for _, at := range []float64{-10, 0, 50, 1e6} {
			p := tr.Power(at)
			if p < 0 || math.IsNaN(p) {
				t.Fatalf("Power(%v) = %v", at, p)
			}
		}
		if e := tr.EnergyBetween(0, 100); e < 0 || math.IsNaN(e) {
			t.Fatalf("EnergyBetween = %v", e)
		}
		if tr.EnergyBetween(50, 10) != 0 {
			t.Fatal("reversed interval must be 0")
		}
	})
}

// FuzzKnapsackSolvers: on random instances, all solvers must return
// feasible packings and respect the exactness/approximation hierarchy.
func FuzzKnapsackSolvers(f *testing.F) {
	f.Add(uint8(3), uint16(100), uint16(50))
	f.Add(uint8(8), uint16(1), uint16(1000))
	f.Fuzz(func(t *testing.T, nRaw uint8, capRaw, scale uint16) {
		n := int(nRaw%10) + 1
		capacity := float64(capRaw) / 10
		items := make([]knapsack.Item, n)
		x := uint32(scale) + 1
		next := func() float64 { // cheap deterministic generator
			x = x*1664525 + 1013904223
			return float64(x%1000) / 10
		}
		for i := range items {
			items[i] = knapsack.Item{Profit: next(), Weight: next() / 2}
		}
		exactBB := knapsack.BranchAndBound(items, capacity)
		exactDP := knapsack.DP(items, capacity, 0.1)
		greedy := knapsack.Greedy(items, capacity)
		fptas := knapsack.FPTAS(0.2)(items, capacity)
		for name, s := range map[string]knapsack.Solution{
			"bb": exactBB, "dp": exactDP, "greedy": greedy, "fptas": fptas,
		} {
			w := 0.0
			for _, k := range s.Picked {
				if k < 0 || k >= n {
					t.Fatalf("%s: index out of range", name)
				}
				w += items[k].Weight
			}
			if w > capacity+1e-9 {
				t.Fatalf("%s: infeasible", name)
			}
		}
		// Weights here are exact multiples of 0.05 so the 0.1-quantum DP can
		// differ from BB only through conservative rounding; it must never
		// exceed BB.
		if exactDP.Profit > exactBB.Profit+1e-9 {
			t.Fatalf("dp %v above exact bb %v", exactDP.Profit, exactBB.Profit)
		}
		if greedy.Profit < exactBB.Profit/2-1e-9 {
			t.Fatalf("greedy %v below half of %v", greedy.Profit, exactBB.Profit)
		}
		if fptas.Profit < 0.8*exactBB.Profit-1e-9 {
			t.Fatalf("fptas %v below (1-eps)·%v", fptas.Profit, exactBB.Profit)
		}
	})
}

// FuzzBuildAndAllocate: instance construction and every offline
// allocator must never panic, and any allocation they return must pass
// Validate (per-slot exclusivity, per-sensor energy budgets) and stay
// under the instance upper bound — on arbitrary deployments, including
// degenerate ones.
func FuzzBuildAndAllocate(f *testing.F) {
	// Seeds cover the corners that historically break schedulers:
	// a near-zero-length tour (the whole path collapses into one slot),
	// single-slot visibility windows (the sink sprints past every
	// sensor), zero-energy sensors (budget 0 ⇒ nothing schedulable),
	// a fixed-power radio, and a lone sensor sitting on the path.
	f.Add(uint8(3), 1e-3, 10.0, 50.0, 1.0, 0.5, 0.0, int64(1))   // zero-length tour
	f.Add(uint8(4), 400.0, 30.0, 400.0, 1.0, 0.6, 0.0, int64(2)) // single-slot windows
	f.Add(uint8(5), 300.0, 60.0, 10.0, 1.0, 0.0, 0.0, int64(3))  // zero-energy sensors
	f.Add(uint8(6), 500.0, 120.0, 5.0, 2.0, 0.8, 0.3, int64(4))  // fixed transmit power
	f.Add(uint8(1), 50.0, 0.0, 1.0, 0.5, 0.2, 0.0, int64(5))     // lone sensor on the path
	f.Fuzz(func(t *testing.T, nRaw uint8, pathLen, maxOffset, speed, tau, budget, fixedPower float64, seed int64) {
		for _, v := range []float64{pathLen, maxOffset, speed, tau, budget, fixedPower} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return
			}
		}
		if pathLen <= 0 || pathLen > 2000 || maxOffset < 0 || maxOffset > 500 {
			return
		}
		if speed <= 0 || tau <= 0 || budget < 0 || budget > 1e6 || fixedPower < 0 {
			return
		}
		// Bound the slot count so each execution stays cheap.
		if pathLen/(speed*tau) > 512 {
			return
		}
		n := int(nRaw%8) + 1
		dep, err := network.Generate(network.Params{
			N: n, PathLength: pathLen, MaxOffset: maxOffset, Seed: seed,
		})
		if err != nil {
			t.Fatalf("Generate rejected sanitized params: %v", err)
		}
		if err := dep.SetUniformBudgets(budget); err != nil {
			t.Fatalf("SetUniformBudgets(%v): %v", budget, err)
		}
		var model radio.Model = radio.Paper2013()
		if fixedPower > 0 {
			fp, err := radio.NewFixedPower(radio.Paper2013(), fixedPower)
			if err != nil {
				return // power outside the rate table
			}
			model = fp
		}
		inst, err := core.BuildInstance(dep, model, speed, tau)
		if err != nil {
			return
		}
		check := func(name string, a *core.Allocation, err error) {
			if err != nil {
				return // a rejected instance is fine; a panic is not
			}
			data, verr := inst.Validate(a)
			if verr != nil {
				t.Fatalf("%s: infeasible allocation: %v", name, verr)
			}
			if ub := inst.UpperBound(); data > ub+1e-6*(1+ub) {
				t.Fatalf("%s: collected %v above upper bound %v", name, data, ub)
			}
		}
		a, err := core.OfflineAppro(inst, core.Options{})
		check("appro", a, err)
		a, err = core.OfflineAppro(inst, core.Options{Eps: 0.5, ForceFPTAS: true})
		check("appro-fptas", a, err)
		a, err = core.OfflineGreedy(inst)
		check("greedy", a, err)
		a, err = core.OfflineMaxMatch(inst) // errors on multi-rate; must not panic
		check("maxmatch", a, err)
		a, err = core.OfflineSequential(inst, core.Options{})
		check("sequential", a, err)
	})
}

// FuzzLineCover: CoverInterval's reported range must contain only in-range
// points and the window derived from it must be consistent.
func FuzzLineCover(f *testing.F) {
	f.Add(500.0, 30.0, 50.0)
	f.Add(0.0, 0.0, 1.0)
	f.Add(-100.0, 200.0, 150.0)
	f.Fuzz(func(t *testing.T, x, y, r float64) {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(r) ||
			math.IsInf(x, 0) || math.IsInf(y, 0) || math.IsInf(r, 0) || r <= 0 || r > 1e6 {
			return
		}
		if math.Abs(x) > 1e6 || math.Abs(y) > 1e6 {
			return
		}
		l := geom.HighwayLine(1000)
		p := geom.Point{X: x, Y: y}
		s0, s1, ok := l.CoverInterval(p, r)
		if !ok {
			return
		}
		if s0 < 0 || s1 > 1000 || s0 > s1 {
			t.Fatalf("invalid interval [%v, %v]", s0, s1)
		}
		for _, s := range []float64{s0, (s0 + s1) / 2, s1} {
			if d := l.At(s).Dist(p); d > r*(1+1e-9)+1e-6 {
				t.Fatalf("s=%v at distance %v > %v", s, d, r)
			}
		}
	})
}
